"""Tests for the synchronous migration engine's concurrency behaviour."""

import numpy as np
import pytest

from conftest import drive, drive_many
from repro import Machine, MemPolicy, PROT_RW, System, opteron_8347he
from repro.util import PAGE_SIZE


def test_concurrent_disjoint_move_pages_no_double_work(system):
    """Two threads moving disjoint halves: every page moves once."""
    proc = system.create_process("disjoint")
    N = 64 * PAGE_SIZE
    shared = {}

    def owner(t):
        addr = yield from t.mmap(N, PROT_RW, policy=MemPolicy.bind(0))
        yield from t.touch(addr, N)
        shared["addr"] = addr

    drive(system, owner, core=0, process=proc)

    def half(offset):
        def body(t):
            yield from t.move_range(shared["addr"] + offset, N // 2, 1)

        return body

    drive_many(system, [(half(0), 4), (half(N // 2), 5)], process=proc)
    assert system.kernel.stats.pages_migrated == 64
    assert proc.addr_space.node_histogram().tolist() == [0, 64, 0, 0]


def test_concurrent_overlapping_move_pages_each_page_once(system):
    """Two threads racing over the SAME range to different nodes: each
    page migrates exactly once (the atomic-commit refilter)."""
    proc = system.create_process("overlap")
    N = 32 * PAGE_SIZE
    shared = {}

    def owner(t):
        addr = yield from t.mmap(N, PROT_RW, policy=MemPolicy.bind(0))
        yield from t.touch(addr, N)
        shared["addr"] = addr

    drive(system, owner, core=0, process=proc)

    def mover(dest):
        def body(t):
            yield from t.move_range(shared["addr"], N, dest)

        return body

    drive_many(system, [(mover(1), 4), (mover(1), 5)], process=proc)
    assert system.kernel.stats.pages_migrated == 32
    assert proc.addr_space.node_histogram().tolist() == [0, 32, 0, 0]


def test_parallel_sync_migration_faster_than_serial(system):
    """Fig. 7's headline at reduced scale: 4 threads beat 1."""
    from repro.experiments.fig7_scalability import measure_parallel_migration

    t1 = measure_parallel_migration(4096, 1, "sync")
    t4 = measure_parallel_migration(4096, 4, "sync")
    assert t4 < t1 / 1.3


def test_parallel_lazy_faster_than_parallel_sync():
    from repro.experiments.fig7_scalability import measure_parallel_migration

    sync = measure_parallel_migration(8192, 4, "sync")
    lazy = measure_parallel_migration(8192, 4, "lazy")
    assert lazy < sync


def test_small_buffer_threads_do_not_help():
    from repro.experiments.fig7_scalability import measure_parallel_migration

    t1 = measure_parallel_migration(64, 1, "lazy")
    t4 = measure_parallel_migration(64, 4, "lazy")
    assert t4 > t1 * 0.85  # no meaningful speedup below ~1 MiB


def test_pagevec_ablation_state_equivalent():
    """Chunk size changes timing, never the final state."""
    placements = []
    for pagevec in (1, 64):
        cm = opteron_8347he().replace(migrate_pagevec=pagevec)
        system = System(Machine.opteron_8347he_quad(cm))

        def body(t):
            addr = yield from t.mmap(32 * PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(0))
            yield from t.touch(addr, 32 * PAGE_SIZE)
            yield from t.move_range(addr, 32 * PAGE_SIZE, 3)
            return t.process.addr_space.node_histogram().tolist()

        placements.append(drive(system, body, core=0))
    assert placements[0] == placements[1] == [0, 0, 0, 32]


def test_migrate_prep_serializes_concurrent_callers(system):
    """The lru_add_drain_all portion of the base overhead is global."""
    proc = system.create_process("prep")
    shared = {}

    def owner(t):
        a = yield from t.mmap(PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(0))
        b = yield from t.mmap(PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(0))
        yield from t.touch(a, PAGE_SIZE)
        yield from t.touch(b, PAGE_SIZE)
        shared.update(a=a, b=b)

    drive(system, owner, core=0, process=proc)

    def mover(key):
        def body(t):
            yield from t.move_range(shared[key], PAGE_SIZE, 1)

        return body

    t0 = system.now
    drive_many(system, [(mover("a"), 4), (mover("b"), 5)], process=proc)
    elapsed = system.now - t0
    cm = system.machine.cost
    # Both calls pay the full base; the migrate_prep portions serialize.
    assert elapsed >= cm.move_pages_base_us + cm.migrate_prep_us - 1.0


def test_migration_tlb_ipis_scale_with_team(system):
    """Each migrated page IPIs every other CPU running the mm."""
    proc = system.create_process("ipi")
    shared = {}

    def owner(t):
        addr = yield from t.mmap(16 * PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(0))
        yield from t.touch(addr, 16 * PAGE_SIZE)
        shared["addr"] = addr

    drive(system, owner, core=0, process=proc)

    def parked(t):
        yield t.kernel.env.timeout(10_000.0)

    def mover(t):
        yield from t.move_range(shared["addr"], 16 * PAGE_SIZE, 1)

    for core in (8, 12):
        system.spawn(proc, core, parked)
    before = system.kernel.stats.tlb_ipis
    m = system.spawn(proc, 4, mover)
    system.run_to(m.join())
    # 16 per-page shootdowns x 2 other running cores.
    assert system.kernel.stats.tlb_ipis - before == 32
    system.run()
