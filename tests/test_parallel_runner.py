"""Determinism contract of the sharded sweep runner.

Pins the three properties ``repro.experiments.parallel`` promises:

* the merged result is byte-identical for every worker count;
* it is byte-identical to the serial ``run()`` of the same experiment
  (same titles, notes, series order — metadata drift fails here);
* per-point seeds derive from ``(root_seed, point_index)`` only.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import fig4_throughput, fig5_nexttouch, fig7_scalability, fig_serve
from repro.experiments.parallel import (
    PARALLEL_EXPERIMENTS,
    SWEEP_SCHEMA,
    resolve_workers,
    run_sweep,
)
from repro.sim.rng import DEFAULT_SEED, point_seed

FIG_COUNTS = [16, 64]
SERVE_OPTS = {"tenants": 2, "keys": 32, "clients": 1, "requests": 60}


def _dump(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


# ------------------------------------------------------------- seeds ----


def test_point_seed_deterministic():
    assert point_seed(123, 0) == point_seed(123, 0)
    assert point_seed(123, 0) != point_seed(123, 1)
    assert point_seed(123, 0) != point_seed(124, 0)
    # None falls back to the package default root seed.
    assert point_seed(None, 5) == point_seed(DEFAULT_SEED, 5)


def test_resolve_workers():
    assert resolve_workers(None) == 1
    assert resolve_workers(4) == 4
    assert resolve_workers("2") == 2
    assert resolve_workers("auto") >= 1
    with pytest.raises(ValueError):
        resolve_workers(0)
    with pytest.raises(ValueError):
        resolve_workers("-3")


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_sweep("fig2")


# ---------------------------------------------- worker-count identity ----


def test_fig4_workers_identical():
    one = run_sweep("fig4", workers=1, counts=FIG_COUNTS, collect=True)
    two = run_sweep("fig4", workers=2, counts=FIG_COUNTS, collect=True)
    assert _dump(one.results[0]) == _dump(two.results[0])
    assert json.dumps(one.manifest, sort_keys=True) == json.dumps(
        two.manifest, sort_keys=True
    )
    assert one.manifest["schema"] == SWEEP_SCHEMA
    assert one.manifest["num_points"] == len(FIG_COUNTS)


def test_sweep_timeseries_worker_count_invariant():
    """The manifest's merged telemetry series concatenates per-point
    samples in point order — the same order however points were
    sharded — so it is byte-identical for every worker count."""
    from repro.obs.timeseries import SCHEMA

    one = run_sweep("fig4", workers=1, counts=FIG_COUNTS, collect=True)
    three = run_sweep("fig4", workers=3, counts=FIG_COUNTS, collect=True)
    series = one.manifest["timeseries"]
    assert series["schema"] == SCHEMA
    assert len(series["points"]) >= len(FIG_COUNTS)
    assert all("t_us" in p and "pages_migrated" in p for p in series["points"])
    assert json.dumps(series, sort_keys=True) == json.dumps(
        three.manifest["timeseries"], sort_keys=True
    )


@pytest.mark.parametrize("seed", [None, 123])
def test_serve_workers_identical(seed):
    one = run_sweep("serve", workers=1, serve_opts=SERVE_OPTS, seed=seed)
    two = run_sweep("serve", workers=2, serve_opts=SERVE_OPTS, seed=seed)
    assert _dump(one.results[0]) == _dump(two.results[0])


# --------------------------------------------------- serial parity ----


def test_fig4_matches_serial():
    sweep = run_sweep("fig4", counts=FIG_COUNTS)
    assert _dump(sweep.results[0]) == _dump(fig4_throughput.run(FIG_COUNTS))


def test_fig5_matches_serial():
    sweep = run_sweep("fig5", counts=FIG_COUNTS)
    assert _dump(sweep.results[0]) == _dump(fig5_nexttouch.run(FIG_COUNTS))


def test_fig7_matches_serial():
    sweep = run_sweep("fig7", workers=2, counts=[64], thread_counts=(1, 2))
    serial = fig7_scalability.run([64], thread_counts=(1, 2))
    assert _dump(sweep.results[0]) == _dump(serial)


def test_serve_matches_serial():
    sweep = run_sweep("serve", workers=2, serve_opts=SERVE_OPTS)
    serial = fig_serve.run(**SERVE_OPTS)
    assert _dump(sweep.results[0]) == _dump(serial)


def test_parallel_experiments_registry():
    assert PARALLEL_EXPERIMENTS == ("fig4", "fig5", "fig7", "serve")
