"""Tests for the application workloads (LU, matmul, BLAS1, streams)."""

import numpy as np
import pytest

from repro import System
from repro.apps.blas1 import StreamingBlas1
from repro.apps.lu import ThreadedLU
from repro.apps.matmul import ConcurrentMatmul
from repro.apps.streams import stream_copy
from repro.errors import ConfigurationError


# ------------------------------------------------------------------ LU ------
def test_lu_numeric_correctness_vs_numpy():
    """The simulated schedule executes a *real* blocked LU correctly."""
    system = System()
    lu = ThreadedLU(system, 128, 32, policy="nexttouch", numeric=True, num_threads=4)
    lu.run()
    assert lu.reconstruction_error() < 1e-8


def test_lu_numeric_correctness_static_policy():
    system = System()
    lu = ThreadedLU(system, 96, 24, policy="static", numeric=True, num_threads=3)
    lu.run()
    assert lu.reconstruction_error() < 1e-8


def test_lu_numeric_matches_scipy():
    scipy_linalg = pytest.importorskip("scipy.linalg")
    system = System()
    lu = ThreadedLU(system, 64, 16, policy="static", numeric=True, num_threads=2)
    lu.run()
    # scipy's lu on the same original matrix (no pivoting happens for
    # the diagonally-dominant input, so P should be identity).
    p, l, u = scipy_linalg.lu(lu._original)
    assert np.allclose(p, np.eye(64))
    ours_l = np.tril(lu._data, -1) + np.eye(64)
    ours_u = np.triu(lu._data)
    assert np.allclose(ours_l, l, atol=1e-8)
    assert np.allclose(ours_u, u, atol=1e-8)


def test_lu_static_never_migrates():
    system = System()
    r = ThreadedLU(system, 1024, 256, policy="static").run()
    assert r.pages_migrated == 0
    assert r.nt_faults == 0
    assert r.elapsed_s > 0


def test_lu_nexttouch_migrates_and_reports():
    system = System()
    r = ThreadedLU(system, 1024, 256, policy="nexttouch").run()
    assert r.nt_faults > 0
    assert r.pages_migrated > 0
    assert not r.page_independent  # 256 * 8 = 2 KiB < page


def test_lu_page_independence_flag():
    system = System()
    r = ThreadedLU(system, 1024, 512, policy="static").run()
    assert r.page_independent


def test_lu_small_blocks_thrash_large_blocks_win():
    """Table 1's two regimes at reduced scale."""

    def improvement(n, b):
        times = {}
        for policy in ("static", "nexttouch"):
            system = System()
            times[policy] = ThreadedLU(system, n, b, policy=policy).run().elapsed_s
        return (times["static"] / times["nexttouch"] - 1) * 100

    assert improvement(2048, 64) < 0  # shared pages: migration thrash
    assert improvement(2048, 512) > 10  # page-independent: locality wins


def test_lu_user_nexttouch_works_but_costs_more():
    """Section 3.4 / 4.5: the user-space scheme functions but its
    per-chunk overhead makes it worse than the kernel scheme at LU's
    granularities — why Table 1 omits it."""

    def time_of(policy):
        system = System()
        r = ThreadedLU(system, 2048, 256, policy=policy).run()
        return r.elapsed_s, system.kernel.stats.signals_delivered

    kernel_time, _ = time_of("nexttouch")
    user_time, signals = time_of("nexttouch-user")
    assert signals > 0  # it really went through SIGSEGV
    assert user_time > kernel_time * 1.1


def test_lu_dynamic_schedule_works_and_is_correct():
    system = System()
    lu = ThreadedLU(
        system, 128, 32, policy="nexttouch", schedule="dynamic", numeric=True, num_threads=4
    )
    result = lu.run()
    assert result.elapsed_s > 0
    assert lu.reconstruction_error() < 1e-8


def test_lu_schedule_validation():
    with pytest.raises(ConfigurationError):
        ThreadedLU(System(), 1024, 256, schedule="guided")


def test_lu_validation():
    system = System()
    with pytest.raises(ConfigurationError):
        ThreadedLU(system, 1000, 512)
    with pytest.raises(ConfigurationError):
        ThreadedLU(system, 1024, 256, policy="magic")


def test_lu_interleaved_initial_distribution():
    system = System()
    lu = ThreadedLU(system, 1024, 256, policy="static")
    lu.run()
    hist = system.kernel.processes[-1].addr_space.node_histogram()
    # Interleave-all: equal quarter per node.
    assert hist.sum() == 1024 * 1024 * 8 // 4096
    assert hist.max() - hist.min() <= 1


# -------------------------------------------------------------- matmul ------
def test_matmul_static_leaves_data_on_master_node():
    system = System()
    r = ConcurrentMatmul(system, 256, policy="static", num_threads=8).run()
    assert r.pages_migrated == 0
    hist = system.kernel.processes[-1].addr_space.node_histogram()
    assert hist[0] == hist.sum()  # everything on the master's node


def test_matmul_nexttouch_redistributes():
    system = System()
    r = ConcurrentMatmul(system, 256, policy="nexttouch", num_threads=8).run()
    assert r.pages_migrated > 0
    hist = system.kernel.processes[-1].addr_space.node_histogram()
    assert np.count_nonzero(hist) > 1  # data followed the workers


def test_matmul_user_nexttouch_works():
    system = System()
    # 16 threads span all four nodes, so 3/4 of the buffers migrate.
    r = ConcurrentMatmul(system, 128, policy="nexttouch-user", num_threads=16).run()
    assert r.pages_migrated > 0
    assert system.kernel.stats.signals_delivered > 0


def test_matmul_migration_pays_off_at_512():
    """Figure 8's crossover: by N=512, kernel NT beats static."""

    def time_of(n, policy):
        system = System()
        return ConcurrentMatmul(system, n, policy=policy).run().elapsed_s

    assert time_of(512, "nexttouch") < time_of(512, "static")
    assert time_of(1024, "nexttouch") < time_of(1024, "static")


def test_matmul_validation():
    system = System()
    with pytest.raises(ConfigurationError):
        ConcurrentMatmul(system, 128, policy="nope")


# --------------------------------------------------------------- BLAS1 ------
def test_blas1_migration_never_helps():
    def time_of(policy):
        system = System()
        return StreamingBlas1(
            system, 1 << 18, policy=policy, num_threads=8, repeats=8
        ).run().elapsed_s

    static = time_of("static")
    nexttouch = time_of("nexttouch")
    # Next-touch may only lose here (it pays migration for nothing).
    assert nexttouch >= static * 0.98


# -------------------------------------------------------------- streams ------
def test_stream_copy_throughput_matches_memcpy_target():
    system = System()
    result = stream_copy(system, 4096, 0, 1)
    assert 1500 <= result.throughput_mb_s <= 2000


def test_stream_copy_local_faster_than_2hop():
    r01 = stream_copy(System(), 2048, 0, 1).throughput_mb_s
    r03 = stream_copy(System(), 2048, 0, 3).throughput_mb_s
    assert r03 < r01
