"""Unit tests for the flow tracer experiment and machine generality."""

import pytest

from conftest import drive
from repro import Machine, Madvise, PROT_RW, System
from repro.experiments import fig12_flows
from repro.util import PAGE_SIZE


# ------------------------------------------------------------------ flows ----
def test_user_flow_contains_signal_and_syscalls():
    tracer = fig12_flows.trace_user_flow()
    steps = fig12_flows.flow_steps(tracer, fig12_flows.USER_STEPS)
    assert any("SIGSEGV" in s for s in steps)
    assert any("move_pages" in s for s in steps)
    assert steps[0].startswith("mprotect")


def test_kernel_flow_has_no_signal_and_one_kernel_entry():
    tracer = fig12_flows.trace_kernel_flow()
    steps = fig12_flows.flow_steps(tracer, fig12_flows.KERNEL_STEPS)
    assert steps[0].startswith("madvise")
    assert not any("SIGSEGV" in s for s in steps)
    assert any("copy page" in s for s in steps)


def test_flow_steps_collapse_repeats():
    from repro.sim.trace import Tracer

    tr = Tracer()
    for _ in range(3):
        tr.record(0.0, 1.0, "x.a")
    tr.record(3.0, 1.0, "y.b")
    steps = fig12_flows.flow_steps(tr, {"x.": "X", "y.": "Y"})
    assert steps == ["X", "Y"]


def test_render_flow_numbers_steps():
    text = fig12_flows.render_flow("T:", ["first", "second"])
    assert "1. first" in text and "2. second" in text


def test_run_renders_both_figures():
    text = fig12_flows.run()
    assert "Figure 1" in text and "Figure 2" in text


# ------------------------------------------------------------- generality ----
@pytest.mark.parametrize("nodes,cores", [(2, 8), (8, 2)])
def test_next_touch_on_other_machines(nodes, cores):
    """Nothing in the stack assumes the paper's 4x4 topology."""
    system = System(Machine.symmetric(nodes, cores))
    proc = system.create_process("gen")
    target_core = (nodes - 1) * cores  # first core of the last node

    def body(t):
        addr = yield from t.mmap(16 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 16 * PAGE_SIZE)
        yield from t.madvise(addr, 16 * PAGE_SIZE, Madvise.NEXTTOUCH)
        yield from t.migrate_to(target_core)
        yield from t.touch(addr, 16 * PAGE_SIZE, bytes_per_page=64)
        return proc.addr_space.node_histogram().tolist()

    thread = system.spawn(proc, 0, body)
    hist = system.run_to(thread.join())
    assert hist[-1] == 16
    assert sum(hist) == 16


def test_single_node_machine_migration_is_noop():
    system = System(Machine.symmetric(1, 4))
    proc = system.create_process("uma")

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        status = yield from t.move_range(addr, 8 * PAGE_SIZE, 0)
        return status.tolist()

    thread = system.spawn(proc, 0, body)
    assert system.run_to(thread.join()) == [0] * 8
    assert system.kernel.stats.pages_migrated == 0


def test_lu_runs_on_two_node_machine():
    from repro.apps.lu import ThreadedLU

    system = System(Machine.symmetric(2, 8))
    result = ThreadedLU(system, 1024, 256, policy="nexttouch", num_threads=8).run()
    assert result.elapsed_s > 0
    assert result.nt_faults > 0


def test_user_nt_on_two_node_machine():
    from repro.nexttouch import UserNextTouch

    system = System(Machine.symmetric(2, 2))
    proc = system.create_process("unt2")
    unt = UserNextTouch(proc)
    shared = {}

    def owner(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        unt.register(addr, 8 * PAGE_SIZE)
        yield from unt.mark(t)
        shared["addr"] = addr

    drive(system, owner, core=0, process=proc)

    def toucher(t):
        yield from t.touch(shared["addr"], 8 * PAGE_SIZE, bytes_per_page=64)
        return proc.addr_space.node_histogram().tolist()

    assert drive(system, toucher, core=2, process=proc) == [0, 8]
