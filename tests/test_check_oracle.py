"""The differential oracle agrees with the kernel on hand-written
scenarios — happy paths, error paths, and the paper's NT/COW/swap
interactions (see docs/correctness.md)."""

import pytest

from repro.check import DiffHarness
from repro.kernel.vma import PROT_NONE, PROT_READ, PROT_RW


def run_clean(ops):
    """Run ops through the harness; fail the test on any divergence."""
    harness = DiffHarness()
    failure = harness.run(ops)
    assert failure is None, f"step {failure and failure.step}: {failure and failure.detail}"
    return harness


def _mmap(region, npages, prot=PROT_RW, proc="p0", shared=False, core=0):
    return {
        "kind": "mmap",
        "proc": proc,
        "core": core,
        "region": region,
        "npages": npages,
        "prot": int(prot),
        "shared": shared,
    }


def _touch(region, lo, hi, write=True, proc="p0", core=0, batch=1):
    return {
        "kind": "touch",
        "proc": proc,
        "core": core,
        "region": region,
        "lo": lo,
        "hi": hi,
        "write": write,
        "batch": batch,
    }


def _range(kind, region, lo, hi, proc="p0", core=0, **extra):
    op = {"kind": kind, "proc": proc, "core": core, "region": region, "lo": lo, "hi": hi}
    op.update(extra)
    return op


def test_demand_zero_and_write_upgrade():
    run_clean(
        [
            _mmap("r0", 8),
            _touch("r0", 0, 8, write=False),
            _touch("r0", 0, 8, write=True),
        ]
    )


def test_first_touch_places_on_local_node():
    harness = run_clean([_mmap("r0", 4), _touch("r0", 0, 4, core=6)])
    node = harness.oracle.num_nodes - 1  # core 6 of 2-per-node lives on node 3
    state = harness.oracle.canonical()
    pages = state["procs"]["p0"]["pages"]
    assert all(page[0] == node for page in pages.values())
    assert harness.state_diff() == []


def test_next_touch_migrates_to_toucher():
    run_clean(
        [
            _mmap("r0", 6),
            _touch("r0", 0, 6, core=0),
            _range("madv_nt", "r0", 0, 6),
            _touch("r0", 0, 6, core=7),  # remote core: migrate-on-touch
        ]
    )


def test_fork_cow_write_both_sides():
    run_clean(
        [
            _mmap("r0", 5),
            _touch("r0", 0, 5, write=True),
            {"kind": "fork", "proc": "p0", "core": 0, "child": "p1"},
            _touch("r0", 0, 3, write=True, proc="p1", core=2),  # child unshares
            _touch("r0", 0, 5, write=True, proc="p0"),  # parent unshares the rest
        ]
    )


def test_fork_read_only_mapping_stays_cow_protected():
    # The bug fixed in src/repro/kernel/fork.py: populated but
    # non-writable private pages must be COW-protected too
    # (tests/reproducers/fork-missing-cow.json).
    run_clean(
        [
            _mmap("r0", 4, prot=PROT_READ),
            _touch("r0", 0, 4, write=False),
            {"kind": "fork", "proc": "p0", "core": 0, "child": "p1"},
            {"kind": "mprotect", "proc": "p0", "core": 0, "region": "r0",
             "lo": 0, "hi": 4, "prot": int(PROT_RW)},
            _touch("r0", 0, 4, write=True),  # must still COW-copy
        ]
    )


def test_swap_out_and_swap_in():
    run_clean(
        [
            _mmap("r0", 8),
            _touch("r0", 0, 8, write=True),
            _range("swap_out", "r0", 0, 4),
            _touch("r0", 0, 8, write=False),  # faults the swapped half back in
        ]
    )


def test_munmap_releases_frames_and_swap_slots():
    # The swap-slot-leak fix (tests/reproducers/munmap-swap-slot-leak.json).
    run_clean(
        [
            _mmap("r0", 8),
            _touch("r0", 0, 8, write=True),
            _range("swap_out", "r0", 2, 6),
            _range("munmap", "r0", 0, 8),
        ]
    )


def test_nt_touch_on_forked_pages_keeps_cow():
    # The NT-stay fix (tests/reproducers/nt-stay-write-on-shared.json):
    # revalidating a next-touch page must not grant WRITE on a frame
    # still shared with the fork sibling.
    run_clean(
        [
            _mmap("r0", 4),
            _touch("r0", 0, 4, write=True, core=4),
            {"kind": "fork", "proc": "p0", "core": 0, "child": "p1"},
            _range("madv_nt", "r0", 0, 4),
            _touch("r0", 0, 4, write=False, core=5),  # same node: stay path
            _touch("r0", 0, 4, write=True, core=5),  # must COW-copy, not scribble
        ]
    )


def test_segv_on_prot_none_matches():
    harness = DiffHarness()
    assert harness.step(0, _mmap("r0", 4)) is None
    assert harness.step(1, _range("mprotect", "r0", 0, 4, prot=int(PROT_NONE))) is None
    assert harness.step(2, _touch("r0", 0, 4, write=False)) is None  # both segv


def test_write_to_read_only_matches():
    run_clean([_mmap("r0", 4, prot=PROT_READ), _touch("r0", 0, 4, write=True)])


def test_errno_paths_match():
    run_clean(
        [
            _mmap("r0", 4),
            # madvise/mprotect past the mapping: ENOMEM on both sides.
            _range("madv_nt", "r0", 0, 4 + 2),
            _range("mprotect", "r0", 2, 4 + 3, prot=int(PROT_READ)),
            # move_pages to a node that does not exist: ENODEV.
            _range("move_pages", "r0", 0, 4, dest=99),
            # migrate_pages with a bad node id: EINVAL.
            {"kind": "migrate_pages", "proc": "p0", "core": 0, "src": 0, "dst": 77},
        ]
    )


def test_move_pages_and_migrate_pages_agree():
    run_clean(
        [
            _mmap("r0", 10),
            _touch("r0", 0, 10, write=True, core=0),
            _range("move_pages", "r0", 0, 5, dest=2),
            {"kind": "migrate_pages", "proc": "p0", "core": 0, "src": 0, "dst": 3},
            _touch("r0", 0, 10, write=True, core=0),
        ]
    )


def test_shared_mapping_fork_no_cow():
    run_clean(
        [
            _mmap("r0", 4, shared=True),
            _touch("r0", 0, 4, write=True),
            {"kind": "fork", "proc": "p0", "core": 0, "child": "p1"},
            _touch("r0", 0, 4, write=True, proc="p1", core=3),  # no COW on shared
        ]
    )


def test_dangling_references_are_skipped():
    harness = DiffHarness()
    # None of these resolve: unknown proc, unknown region, dup child.
    assert harness.step(0, _touch("rX", 0, 1, proc="p0")) is None
    assert harness.step(1, _mmap("r0", 4, proc="p9")) is None
    assert harness.step(2, {"kind": "fork", "proc": "pX", "core": 0, "child": "p1"}) is None
    assert harness.skipped == 3 and harness.steps_run == 0


def test_harness_detects_planted_kernel_divergence():
    harness = DiffHarness()
    assert harness.step(0, _mmap("r0", 4)) is None
    assert harness.step(1, _touch("r0", 0, 4)) is None
    # Corrupt the kernel's placement cache behind the oracle's back.
    proc = harness.kprocs["p0"]
    vma = proc.addr_space.vmas[0]
    vma.pt.node[0] = (int(vma.pt.node[0]) + 1) % harness.oracle.num_nodes
    failure = harness.step(2, _touch("r0", 0, 1, write=False))
    assert failure is not None
    assert failure.kind in ("invariant", "divergence")


def test_oracle_unknown_kind_raises():
    harness = DiffHarness()
    with pytest.raises(ValueError):
        harness.step(0, {"kind": "frobnicate", "proc": "p0", "core": 0})
