"""The docs linter: resolves good references, catches broken ones."""

import importlib.util
import pathlib

import pytest

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools" / "docs_check.py"


@pytest.fixture(scope="module")
def docs_check():
    spec = importlib.util.spec_from_file_location("docs_check", TOOLS)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_dotted_resolves_modules_and_attributes(docs_check):
    assert docs_check.check_dotted("repro.obs.metrics")
    assert docs_check.check_dotted("repro.obs.metrics.MetricsRegistry")
    assert docs_check.check_dotted("repro.sim.trace.Tracer.to_chrome_trace")
    assert docs_check.check_dotted("repro.hardware.timing.CostModel")


def test_check_dotted_rejects_broken_references(docs_check):
    assert not docs_check.check_dotted("repro.nonexistent_module")
    assert not docs_check.check_dotted("repro.obs.metrics.NoSuchClass")
    assert not docs_check.check_dotted("repro.sim.trace.Tracer.no_such_method")


def test_check_path(docs_check):
    assert docs_check.check_path("src/repro/obs/bench.py")
    assert docs_check.check_path("repro/report.py")  # src/ prefix optional
    assert not docs_check.check_path("src/repro/obs/missing.py")


def test_cli_vocabulary_contains_new_surface(docs_check):
    choices, flags = docs_check.cli_vocabulary()
    assert {"fig4", "all", "bench"} <= choices
    assert {"--csv", "--json", "--trace", "--tolerance", "--update-baseline",
            "--check"} <= flags


def test_invariant_contract_in_sync(docs_check):
    assert docs_check.check_invariant_contract() == []


def test_invariant_contract_detects_drift(docs_check, monkeypatch):
    from repro.check import invariants

    monkeypatch.setitem(invariants.INVARIANTS, "ghost_checker", lambda k: [])
    errors = docs_check.check_invariant_contract()
    assert any("ghost_checker" in e for e in errors)


def test_repo_docs_are_clean(docs_check):
    assert docs_check.main() == 0
