"""Tests for the next-touch libraries and lazy-migration strategies."""

import numpy as np
import pytest

from conftest import drive, drive_many
from repro import Madvise, PROT_RW, System
from repro.nexttouch import (
    LazyKernelNextTouch,
    LazyUserNextTouch,
    NoMigration,
    Region,
    SyncMovePages,
    UserNextTouch,
    mark_next_touch,
    pending_next_touch_pages,
    UserNextTouch,
)
from repro.util import PAGE_SIZE


def make_buffer(t, npages):
    addr = yield from t.mmap(npages * PAGE_SIZE, PROT_RW, name="buf")
    yield from t.touch(addr, npages * PAGE_SIZE)
    return addr


# ----------------------------------------------------------- user library ----
def test_user_nt_whole_region_migrates_on_one_touch(system):
    proc = system.create_process("unt")
    unt = UserNextTouch(proc)
    shared = {}

    def owner(t):
        addr = yield from make_buffer(t, 16)
        shared["addr"] = addr
        unt.register(addr, 16 * PAGE_SIZE)
        yield from unt.mark(t)

    drive(system, owner, core=0, process=proc)

    def toucher(t):
        # touch ONE page; whole region should migrate to node 2
        yield from t.touch(shared["addr"] + 5 * PAGE_SIZE, PAGE_SIZE, bytes_per_page=64)
        return t.process.addr_space.node_histogram().tolist()

    hist = drive(system, toucher, core=9, process=proc)  # node 2
    assert hist == [0, 0, 16, 0]
    assert unt.migrations == 1
    assert unt.locations == {(0, 0): 2}


def test_user_nt_chunked_granularity(system):
    """With chunking, each chunk follows its own toucher — the 'matrix
    column' granularity of Section 3.2."""
    proc = system.create_process("unt-chunks")
    unt = UserNextTouch(proc)
    shared = {}

    def owner(t):
        addr = yield from make_buffer(t, 16)
        shared["addr"] = addr
        unt.register(addr, 16 * PAGE_SIZE, chunk_bytes=4 * PAGE_SIZE)
        yield from unt.mark(t)

    drive(system, owner, core=0, process=proc)

    def touch_half(core_first_page):
        def body(t):
            yield from t.touch(
                shared["addr"] + core_first_page * PAGE_SIZE, 8 * PAGE_SIZE, bytes_per_page=64
            )

        return body

    drive(system, touch_half(0), core=4, process=proc)  # node 1 gets chunks 0-1
    drive(system, touch_half(8), core=12, process=proc)  # node 3 gets chunks 2-3
    hist = proc.addr_space.node_histogram()
    assert hist.tolist() == [0, 8, 0, 8]
    assert unt.migrations == 4


def test_user_nt_single_signal_per_chunk(system):
    proc = system.create_process("unt-sig")
    unt = UserNextTouch(proc)
    shared = {}

    def owner(t):
        addr = yield from make_buffer(t, 8)
        shared["addr"] = addr
        unt.register(addr, 8 * PAGE_SIZE)
        yield from unt.mark(t)

    drive(system, owner, core=0, process=proc)

    def toucher(t):
        yield from t.touch(shared["addr"], 8 * PAGE_SIZE, bytes_per_page=64)

    drive(system, toucher, core=4, process=proc)
    # One chunk -> one SIGSEGV despite eight pages.
    assert system.kernel.stats.signals_delivered == 1


def test_user_nt_unrelated_fault_still_fatal(system):
    proc = system.create_process("unt-other")
    UserNextTouch(proc)

    def body(t):
        yield from t.touch(0xDEAD000, PAGE_SIZE)

    from repro.errors import SegmentationFault

    with pytest.raises(SegmentationFault, match="outside next-touch"):
        drive(system, body, process=proc)


def test_region_validation():
    with pytest.raises(ValueError):
        Region(addr=5, nbytes=PAGE_SIZE, prot=PROT_RW, chunk_bytes=PAGE_SIZE)
    with pytest.raises(ValueError):
        Region(addr=0, nbytes=PAGE_SIZE, prot=PROT_RW, chunk_bytes=100)
    r = Region(addr=0, nbytes=10 * PAGE_SIZE, prot=PROT_RW, chunk_bytes=4 * PAGE_SIZE)
    assert r.num_chunks == 3
    assert r.chunk_of(9 * PAGE_SIZE) == 2
    assert r.chunk_range(2) == (8 * PAGE_SIZE, 2 * PAGE_SIZE)


def test_unregister_rekeys_locations(system):
    """Removing a region must not corrupt later regions' location
    knowledge (indices shift down)."""
    proc = system.create_process("unt-rekey")
    unt = UserNextTouch(proc)
    shared = {}

    def owner(t):
        a = yield from make_buffer(t, 4)
        b = yield from make_buffer(t, 4)
        shared["ra"] = unt.register(a, 4 * PAGE_SIZE)
        shared["rb"] = unt.register(b, 4 * PAGE_SIZE)
        yield from unt.mark(t, shared["rb"])
        yield from t.migrate_to(5)  # node 1
        yield from t.touch(b, 4 * PAGE_SIZE, bytes_per_page=64)

    drive(system, owner, core=0, process=proc)
    assert unt.locations == {(1, 0): 1}
    unt.unregister(shared["ra"])
    # Region b is now index 0; its knowledge must follow.
    assert unt.locations == {(0, 0): 1}


def test_unregister_rules(system):
    proc = system.create_process("unt-unreg")
    unt = UserNextTouch(proc)

    def body(t):
        addr = yield from make_buffer(t, 4)
        region = unt.register(addr, 4 * PAGE_SIZE)
        yield from unt.mark(t, region)
        return region

    region = drive(system, body, process=proc)
    with pytest.raises(ValueError):
        unt.unregister(region)
    region.marked = [False] * region.num_chunks
    unt.unregister(region)
    assert unt.regions == []


# --------------------------------------------------------- kernel wrapper ----
def test_mark_next_touch_and_pending(system):
    def body(t):
        addr = yield from make_buffer(t, 8)
        marked = yield from mark_next_touch(t, addr, 8 * PAGE_SIZE)
        pend_before = pending_next_touch_pages(t, addr, 8 * PAGE_SIZE)
        yield from t.touch(addr, 4 * PAGE_SIZE, bytes_per_page=64)
        pend_after = pending_next_touch_pages(t, addr, 8 * PAGE_SIZE)
        return marked, pend_before, pend_after

    assert drive(system, body) == (8, 8, 4)


# ------------------------------------------------------------- strategies ----
@pytest.mark.parametrize("strategy_name", ["sync", "lazy-kernel", "lazy-user"])
def test_strategies_end_state_equivalent(system, strategy_name):
    """All migration strategies leave the buffer on the toucher's node."""
    proc = system.create_process("strat")
    shared = {}

    def owner(t):
        shared["addr"] = yield from make_buffer(t, 16)

    drive(system, owner, core=0, process=proc)
    if strategy_name == "sync":
        strategy = SyncMovePages()
    elif strategy_name == "lazy-kernel":
        strategy = LazyKernelNextTouch()
    else:
        strategy = LazyUserNextTouch(UserNextTouch(proc))

    def worker(t):
        yield from strategy.migrate(t, shared["addr"], 16 * PAGE_SIZE, t.node)
        yield from t.touch(shared["addr"], 16 * PAGE_SIZE, bytes_per_page=64)
        return t.process.addr_space.node_histogram().tolist()

    hist = drive(system, worker, core=13, process=proc)  # node 3
    assert hist == [0, 0, 0, 16]


def test_lazy_untouched_pages_stay(system):
    """Lazy migration's headline property: untouched pages never move."""
    proc = system.create_process("lazy-part")
    shared = {}

    def owner(t):
        shared["addr"] = yield from make_buffer(t, 16)

    drive(system, owner, core=0, process=proc)
    strategy = LazyKernelNextTouch()

    def worker(t):
        yield from strategy.migrate(t, shared["addr"], 16 * PAGE_SIZE, None)
        # touch only the first quarter
        yield from t.touch(shared["addr"], 4 * PAGE_SIZE, bytes_per_page=64)
        return t.process.addr_space.node_histogram().tolist()

    hist = drive(system, worker, core=4, process=proc)  # node 1
    assert hist == [12, 4, 0, 0]
    assert system.kernel.stats.pages_migrated == 4


def test_no_migration_strategy_is_inert(system):
    proc = system.create_process("none")
    shared = {}

    def owner(t):
        shared["addr"] = yield from make_buffer(t, 8)

    drive(system, owner, core=0, process=proc)

    def worker(t):
        yield from NoMigration().migrate(t, shared["addr"], 8 * PAGE_SIZE, t.node)
        yield from t.touch(shared["addr"], 8 * PAGE_SIZE, bytes_per_page=64)
        return t.process.addr_space.node_histogram().tolist()

    assert drive(system, worker, core=13, process=proc) == [8, 0, 0, 0]


def test_sync_strategy_cost_paid_upfront_lazy_on_touch(system):
    """Timing signature: sync pays at migrate(); lazy pays at touch."""
    proc = system.create_process("timing")
    shared = {}

    def owner(t):
        shared["addr"] = yield from make_buffer(t, 64)

    drive(system, owner, core=0, process=proc)

    def measure(strategy):
        times = {}

        def worker(t):
            t0 = system.now
            yield from strategy.migrate(t, shared["addr"], 64 * PAGE_SIZE, t.node)
            times["migrate"] = system.now - t0
            t0 = system.now
            yield from t.touch(shared["addr"], 64 * PAGE_SIZE, bytes_per_page=64)
            times["touch"] = system.now - t0

        drive(system, worker, core=4, process=proc)
        return times

    sync_times = measure(SyncMovePages())
    # Move data back to node 0 for a fair lazy measurement.
    def back(t):
        yield from t.move_range(shared["addr"], 64 * PAGE_SIZE, 0)

    drive(system, back, core=0, process=proc)
    lazy_times = measure(LazyKernelNextTouch())
    assert sync_times["migrate"] > 100  # base overhead + copies
    assert lazy_times["migrate"] < 50  # just the madvise
    assert lazy_times["touch"] > sync_times["touch"]  # faults migrate
