"""Unit tests for locks, barriers and bandwidth resources."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthResource, Barrier, Environment, Mutex, Semaphore


# ---------------------------------------------------------------- Mutex ----
def test_mutex_mutual_exclusion_and_fifo():
    env = Environment()
    lock = Mutex(env, name="m")
    trace = []

    def worker(tag, hold):
        yield lock.acquire()
        trace.append(("acq", tag, env.now))
        yield env.timeout(hold)
        lock.release()
        trace.append(("rel", tag, env.now))

    for tag in range(3):
        env.process(worker(tag, 10.0))
    env.run()
    # FIFO service: 0 then 1 then 2, back to back.
    assert [t for kind, t, _ in trace if kind == "acq"] == [0, 1, 2]
    assert [now for kind, _, now in trace if kind == "acq"] == [0.0, 10.0, 20.0]


def test_mutex_stats():
    env = Environment()
    lock = Mutex(env)

    def worker():
        yield lock.acquire()
        yield env.timeout(5.0)
        lock.release()

    env.process(worker())
    env.process(worker())
    env.run()
    assert lock.stats.acquisitions == 2
    assert lock.stats.contended == 1
    assert lock.stats.wait_time == pytest.approx(5.0)
    assert lock.stats.hold_time == pytest.approx(10.0)
    assert lock.stats.contention_ratio == pytest.approx(0.5)


def test_mutex_release_unheld_rejected():
    env = Environment()
    lock = Mutex(env)
    with pytest.raises(SimulationError):
        lock.release()


def test_mutex_locked_helper():
    env = Environment()
    lock = Mutex(env)

    def worker():
        yield from lock.locked(7.0)
        return env.now

    p = env.process(worker())
    assert env.run(until=p) == 7.0
    assert not lock.held


# ------------------------------------------------------------- Semaphore ----
def test_semaphore_capacity():
    env = Environment()
    sem = Semaphore(env, capacity=2)
    active_peak = [0]
    active = [0]

    def worker():
        yield sem.acquire()
        active[0] += 1
        active_peak[0] = max(active_peak[0], active[0])
        yield env.timeout(10.0)
        active[0] -= 1
        sem.release()

    for _ in range(5):
        env.process(worker())
    env.run()
    assert active_peak[0] == 2
    assert env.now == pytest.approx(30.0)  # ceil(5/2) waves of 10


# --------------------------------------------------------------- Barrier ----
def test_barrier_releases_all_at_once():
    env = Environment()
    bar = Barrier(env, parties=3)
    release_times = []

    def worker(delay):
        yield env.timeout(delay)
        yield bar.wait()
        release_times.append(env.now)

    for delay in (1.0, 5.0, 9.0):
        env.process(worker(delay))
    env.run()
    assert release_times == [9.0, 9.0, 9.0]


def test_barrier_is_cyclic():
    env = Environment()
    bar = Barrier(env, parties=2)
    gens = []

    def worker():
        for _ in range(3):
            gen = yield bar.wait()
            gens.append(gen)

    env.process(worker())
    env.process(worker())
    env.run()
    assert sorted(gens) == [1, 1, 2, 2, 3, 3]
    assert bar.generation == 3


# ---------------------------------------------------- BandwidthResource ----
def test_bandwidth_single_transfer_time():
    env = Environment()
    link = BandwidthResource(env, capacity=100.0)  # 100 B/us

    def proc():
        yield link.transfer(1000.0)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == pytest.approx(10.0)


def test_bandwidth_fair_sharing_two_transfers():
    env = Environment()
    link = BandwidthResource(env, capacity=100.0)
    done = {}

    def proc(tag, nbytes):
        yield link.transfer(nbytes)
        done[tag] = env.now

    env.process(proc("a", 1000.0))
    env.process(proc("b", 1000.0))
    env.run()
    # Both share 100 B/us -> 50 each -> 20 us for both.
    assert done["a"] == pytest.approx(20.0)
    assert done["b"] == pytest.approx(20.0)


def test_bandwidth_released_capacity_speeds_up_survivor():
    env = Environment()
    link = BandwidthResource(env, capacity=100.0)
    done = {}

    def proc(tag, nbytes):
        yield link.transfer(nbytes)
        done[tag] = env.now

    env.process(proc("short", 500.0))
    env.process(proc("long", 1500.0))
    env.run()
    # Shared at 50/50 until short finishes at t=10 (500B); long has
    # 1000B left, now at full 100 B/us -> finishes at t=20.
    assert done["short"] == pytest.approx(10.0)
    assert done["long"] == pytest.approx(20.0)


def test_bandwidth_max_rate_cap_water_filling():
    env = Environment()
    link = BandwidthResource(env, capacity=100.0)
    done = {}

    def proc(tag, nbytes, cap):
        yield link.transfer(nbytes, max_rate=cap)
        done[tag] = env.now

    # Capped transfer takes 10 B/us; uncapped gets the remaining 90.
    env.process(proc("capped", 100.0, 10.0))
    env.process(proc("free", 900.0, None))
    env.run()
    assert done["capped"] == pytest.approx(10.0)
    assert done["free"] == pytest.approx(10.0)


def test_bandwidth_staggered_join():
    env = Environment()
    link = BandwidthResource(env, capacity=100.0)
    done = {}

    def first():
        yield link.transfer(1000.0)
        done["first"] = env.now

    def second():
        yield env.timeout(5.0)
        yield link.transfer(250.0)
        done["second"] = env.now

    env.process(first())
    env.process(second())
    env.run()
    # first runs alone 0-5 (500B), shares 50/50 from t=5.
    # second needs 250B at 50 -> done at t=10; first then has
    # 1000-500-250=250B at 100 -> done at t=12.5.
    assert done["second"] == pytest.approx(10.0)
    assert done["first"] == pytest.approx(12.5)


def test_bandwidth_zero_byte_transfer_completes_immediately():
    env = Environment()
    link = BandwidthResource(env, capacity=10.0)
    ev = link.transfer(0)
    assert ev.triggered


def test_bandwidth_accounts_bytes():
    env = Environment()
    link = BandwidthResource(env, capacity=10.0)

    def proc():
        yield link.transfer(100.0)
        yield link.transfer(50.0)

    env.process(proc())
    env.run()
    assert link.bytes_transferred == pytest.approx(150.0)


def test_bandwidth_no_livelock_at_large_clock_values():
    """Regression: at clock values where a residual transfer's
    completion delta underflows float64 spacing, the resource must
    finish the transfer instead of re-firing a wake at a frozen
    timestamp forever."""
    env = Environment()
    env.now = 1.2e8  # ~2 minutes of simulated microseconds
    link = BandwidthResource(env, capacity=1350.0)
    done = []

    def proc(nbytes, delay):
        yield env.timeout(delay)
        yield link.transfer(nbytes, max_rate=1000.0)
        done.append(env.now)

    # Staggered joins leave sub-epsilon residues on the in-flight
    # transfers — exactly the pattern that used to livelock.
    for i in range(16):
        env.process(proc(4096.0 * 512, 0.1 * i))
    env.run()
    assert len(done) == 16
    assert link.active_transfers == 0
    assert link.bytes_transferred == pytest.approx(16 * 4096.0 * 512)


def test_bandwidth_utilization():
    env = Environment()
    link = BandwidthResource(env, capacity=10.0)

    def proc():
        yield link.transfer(100.0)  # busy 10 us at full rate
        yield env.timeout(10.0)  # idle 10 us

    env.process(proc())
    env.run()
    assert link.utilization() == pytest.approx(0.5)
