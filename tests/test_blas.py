"""Tests for the BLAS substrate: cost model, block geometry, contention."""

import numpy as np
import pytest

from repro import Machine, System
from repro.blas import BlockedMatrix, BlasCostModel, ContentionTracker, locality_from_nodes
from repro.errors import ConfigurationError
from repro.util import PAGE_SIZE


@pytest.fixture
def machine():
    return Machine.opteron_8347he_quad()


# ----------------------------------------------------------- BlockedMatrix ---
def test_block_pages_512_doubles_is_page_independent():
    """The paper's threshold: 512 float64 per block row = one page."""
    m = BlockedMatrix(0, 4096, 512, dtype_size=8)
    assert m.blocks_page_independent()
    a = m.block_pages(0, 0)
    b = m.block_pages(0, 1)
    assert np.intersect1d(a, b).size == 0
    assert m.pages_shared_with_neighbors(1, 1) == 0


def test_block_pages_small_blocks_share_pages():
    m = BlockedMatrix(0, 4096, 64, dtype_size=8)
    assert not m.blocks_page_independent()
    a = m.block_pages(0, 0)
    b = m.block_pages(0, 1)
    # 64 * 8 = 512 bytes per block row: 8 blocks per page.
    assert np.intersect1d(a, b).size == a.size
    assert m.pages_shared_with_neighbors(2, 3) > 0


def test_block_pages_counts():
    m = BlockedMatrix(0, 4096, 512, dtype_size=8)
    # One page per block row.
    assert m.block_pages(3, 5).size == 512
    assert m.npages == 4096 * 4096 * 8 // PAGE_SIZE


def test_block_pages_cover_matrix_exactly():
    m = BlockedMatrix(0, 1024, 256, dtype_size=8)
    all_pages = m.blocks_pages([(i, j) for i in range(m.nb) for j in range(m.nb)])
    assert all_pages.size == m.npages
    assert all_pages[0] == 0
    assert all_pages[-1] == m.npages - 1


def test_trailing_submatrix_range():
    m = BlockedMatrix(0, 2048, 512, dtype_size=8)
    addr, nbytes = m.trailing_submatrix_range(0)
    assert (addr, nbytes) == (0, m.nbytes)
    addr, nbytes = m.trailing_submatrix_range(2)
    assert addr == 2 * 512 * 2048 * 8
    assert nbytes == m.nbytes - addr
    _, nbytes = m.trailing_submatrix_range(m.nb)
    assert nbytes == 0


def test_blocked_matrix_validation():
    with pytest.raises(ConfigurationError):
        BlockedMatrix(0, 1000, 512, 8)  # not a multiple
    with pytest.raises(ConfigurationError):
        BlockedMatrix(5, 1024, 512, 8)  # unaligned
    with pytest.raises(ConfigurationError):
        BlockedMatrix(0, 1024, 512, 2)  # bad dtype


def test_block_pages_float32_threshold():
    """Floats halve the byte width: 1024-wide blocks become the
    page-independent ones."""
    assert not BlockedMatrix(0, 4096, 512, 4).blocks_page_independent()
    assert BlockedMatrix(0, 4096, 1024, 4).blocks_page_independent()


# ------------------------------------------------------------- cost model ---
def test_flop_time_scales(machine):
    m = BlasCostModel(machine, flop_efficiency=0.5)
    assert m.flop_us(2e6) == pytest.approx(2 * m.flop_us(1e6))


def test_gemm_traffic_regimes(machine):
    m = BlasCostModel(machine, dtype_size=8, cache_sharers=1)
    fitting = m.gemm_traffic(128)  # 3*128^2*8 = 393 KiB < 2 MB
    assert fitting == pytest.approx(3 * 128 * 128 * 8)
    spilling = m.gemm_traffic(1024)  # 24 MiB >> 2 MB
    assert spilling > 50 * fitting


def test_partial_spill_transition_is_monotonic(machine):
    m = BlasCostModel.era_reference_blas(machine)
    traffic = [m.gemm_traffic(b) for b in (64, 128, 256, 512, 1024)]
    assert all(t2 > t1 for t1, t2 in zip(traffic, traffic[1:]))


def test_local_vs_remote_stall(machine):
    m = BlasCostModel(machine, dtype_size=8)
    local = m.stall_us(0, 1e6, {0: 1.0})
    remote = m.stall_us(0, 1e6, {3: 1.0})
    assert remote > local * 2


def test_stall_streaming_hides_remote(machine):
    """The BLAS1 model: prefetch hides latency even across HT."""
    m = BlasCostModel(machine, dtype_size=8)
    remote_blas3 = m.stall_us(0, 1e6, {3: 1.0})
    remote_blas1 = m.stall_us(0, 1e6, {3: 1.0}, streaming=True)
    assert remote_blas1 < remote_blas3 / 2


def test_stall_zero_for_empty_locality(machine):
    m = BlasCostModel(machine)
    assert m.stall_us(0, 1e6, {}) == 0.0
    assert m.stall_us(0, 0.0, {0: 1.0}) == 0.0


def test_op_costs_ordering(machine):
    m = BlasCostModel(machine, dtype_size=8)
    loc = {0: 1.0}
    gemm = m.gemm(0, 512, loc)
    trsm = m.trsm(0, 512, loc)
    getrf = m.getrf(0, 512, loc)
    assert gemm.flop_us > trsm.flop_us > getrf.flop_us
    assert gemm.total_us == gemm.flop_us + gemm.stall_us


def test_locality_from_nodes():
    nodes = np.asarray([0, 0, 1, 3, 3, 3, -1], dtype=np.int16)
    assert locality_from_nodes(nodes, 4) == {0: 2.0, 1: 1.0, 3: 3.0}
    assert locality_from_nodes(np.asarray([-1, -1]), 4) == {}


def test_cost_model_validation(machine):
    with pytest.raises(ConfigurationError):
        BlasCostModel(machine, flop_efficiency=0.0)
    with pytest.raises(ConfigurationError):
        BlasCostModel(machine, traffic_factor=0.5)
    with pytest.raises(ConfigurationError):
        BlasCostModel(machine, spill_tile=1)


# ------------------------------------------------------------- contention ---
def test_congestion_grows_with_streams(machine):
    tr = ContentionTracker(machine, congestion_alpha=0.5)
    assert tr.congestion(1, 0) == 1.0
    tokens = [tr.enter(0, [1]) for _ in range(4)]
    # 4 streams on the 1->0 link: 1 + 0.5 * 3.
    assert tr.congestion(1, 0) == pytest.approx(2.5)
    for t in tokens:
        tr.exit(t)
    assert tr.congestion(1, 0) == 1.0
    assert tr.active_link_streams() == {}


def test_controller_share_divides(machine):
    tr = ContentionTracker(machine)
    full = tr.controller_share(2)
    tokens = [tr.enter(2, [2]) for _ in range(4)]
    assert tr.controller_share(2) == pytest.approx(full / 4)
    for t in tokens:
        tr.exit(t)


def test_local_access_registers_no_links(machine):
    tr = ContentionTracker(machine)
    token = tr.enter(1, [1])
    assert token.links == []
    assert token.controllers == [1]
    tr.exit(token)


def test_two_hop_route_loads_both_links(machine):
    tr = ContentionTracker(machine)
    token = tr.enter(0, [3])  # nodes 0 and 3 are two hops apart
    assert len(token.links) == 2
    tr.exit(token)


def test_stall_uses_tracker_congestion(machine):
    m = BlasCostModel(machine, dtype_size=8)
    tr = ContentionTracker(machine, congestion_alpha=1.0)
    quiet = m.stall_us(0, 1e7, {1: 1.0}, tr)
    tokens = [tr.enter(0, [1]) for _ in range(6)]
    loud = m.stall_us(0, 1e7, {1: 1.0}, tr)
    for t in tokens:
        tr.exit(t)
    assert loud > quiet * 2
