"""Tests for the libnuma-style API."""

import pytest

from conftest import drive
from repro import Placement, System
from repro.errors import ConfigurationError
from repro.numa import (
    numa_alloc_interleaved,
    numa_alloc_local,
    numa_alloc_onnode,
    numa_distance,
    numa_free,
    numa_maps,
    numa_node_of_page,
    numa_num_configured_nodes,
    numa_run_on_node,
)
from repro.util import PAGE_SIZE


def test_alloc_onnode_places_on_first_touch(system):
    def body(t):
        addr = yield from numa_alloc_onnode(t, 8 * PAGE_SIZE, 2)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        return t.process.addr_space.node_histogram().tolist()

    assert drive(system, body, core=0) == [0, 0, 8, 0]


def test_alloc_local_follows_thread(system):
    def body(t):
        addr = yield from numa_alloc_local(t, 4 * PAGE_SIZE)
        yield from t.touch(addr, 4 * PAGE_SIZE)
        return t.process.addr_space.node_histogram().tolist()

    assert drive(system, body, core=7) == [0, 4, 0, 0]  # core 7 = node 1


def test_alloc_interleaved_round_robins(system):
    def body(t):
        addr = yield from numa_alloc_interleaved(t, 8 * PAGE_SIZE)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        return t.process.addr_space.node_histogram().tolist()

    assert drive(system, body) == [2, 2, 2, 2]


def test_alloc_interleaved_subset(system):
    def body(t):
        addr = yield from numa_alloc_interleaved(t, 8 * PAGE_SIZE, nodes=[1, 3])
        yield from t.touch(addr, 8 * PAGE_SIZE)
        return t.process.addr_space.node_histogram().tolist()

    assert drive(system, body) == [0, 4, 0, 4]


def test_alloc_onnode_validates_node(system):
    def body(t):
        yield from numa_alloc_onnode(t, PAGE_SIZE, 99)

    with pytest.raises(ConfigurationError):
        drive(system, body)


def test_numa_free_releases(system):
    def body(t):
        addr = yield from numa_alloc_onnode(t, 4 * PAGE_SIZE, 1)
        yield from t.touch(addr, 4 * PAGE_SIZE)
        used = system.kernel.allocators[1].used
        freed = yield from numa_free(t, addr, 4 * PAGE_SIZE)
        return freed, used - system.kernel.allocators[1].used

    assert drive(system, body) == (4, 4)


def test_node_of_page(system):
    def body(t):
        addr = yield from numa_alloc_onnode(t, PAGE_SIZE, 3)
        before = yield from numa_node_of_page(t, addr)
        yield from t.touch(addr, PAGE_SIZE)
        after = yield from numa_node_of_page(t, addr)
        return before, after

    assert drive(system, body) == (-1, 3)


def test_run_on_node_moves_thread(system):
    def body(t):
        core = yield from numa_run_on_node(t, 2, system.scheduler)
        return core, t.node

    core, node = drive(system, body, core=0)
    assert node == 2
    assert core in system.machine.cores_of_node(2)


def test_num_nodes_and_distance(system):
    def body(t):
        yield t.kernel.env.timeout(0)
        return (
            numa_num_configured_nodes(t),
            numa_distance(t, 0, 0),
            numa_distance(t, 0, 1),
            numa_distance(t, 0, 3),
        )

    assert drive(system, body) == (4, 10, 16, 22)


def test_numa_maps_annotates_swap_file_and_shared(system):
    from repro.kernel.files import SimFile, mmap_file
    from repro.kernel.swap import attach_swap
    from repro.kernel.vma import PROT_READ, PROT_RW

    attach_swap(system.kernel)
    proc = system.create_process("annot")
    f = SimFile(system.kernel, "report.bin", 2 * PAGE_SIZE)

    def body(t):
        anon = yield from t.mmap(4 * PAGE_SIZE, PROT_RW, name="heap")
        yield from t.touch(anon, 4 * PAGE_SIZE)
        yield from t.swap_out(anon, 2 * PAGE_SIZE)
        yield from mmap_file(t, f, PROT_READ)
        sh = yield from t.mmap(PAGE_SIZE, PROT_RW, shared=True, name="shm")
        yield from t.touch(sh, PAGE_SIZE)

    drive(system, body, core=0, process=proc)
    report = numa_maps(proc)
    assert "swapcache=2" in report
    assert "file=report.bin" in report
    assert "shared" in report


def test_numa_maps_report(system):
    proc = system.create_process("maps")

    def body(t):
        addr = yield from numa_alloc_onnode(t, 4 * PAGE_SIZE, 1, name="mybuf")
        yield from t.touch(addr, 4 * PAGE_SIZE)

    drive(system, body, core=0, process=proc)
    report = numa_maps(proc)
    assert "bind:1" in report
    assert "N1=4" in report
    assert "mybuf" in report
