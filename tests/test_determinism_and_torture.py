"""Determinism guarantees and mixed-operation torture tests."""

import numpy as np
import pytest

from conftest import drive
from repro import Madvise, MemPolicy, PROT_NONE, PROT_RW, System
from repro.experiments.fig5_nexttouch import measure_kernel_nt
from repro.experiments.fig7_scalability import measure_parallel_migration
from repro.util import PAGE_SIZE


# ------------------------------------------------------------- determinism ---
def test_fig7_measurement_is_bit_identical():
    a = measure_parallel_migration(512, 3, "lazy")
    b = measure_parallel_migration(512, 3, "lazy")
    assert a == b


def test_fig5_measurement_is_bit_identical():
    assert measure_kernel_nt(128) == measure_kernel_nt(128)


def test_lu_run_is_bit_identical():
    from repro.apps.lu import ThreadedLU

    def once():
        system = System()
        return ThreadedLU(system, 1024, 256, policy="nexttouch", seed=3).run().elapsed_us

    assert once() == once()


def test_lu_shuffle_seed_changes_schedule_not_correctness():
    """Different shuffle seeds reorder work across nodes, but the
    numeric factorization stays exact every time."""
    from repro.apps.lu import ThreadedLU

    for seed in (1, 2, 3):
        system = System()
        lu = ThreadedLU(
            system, 512, 128, policy="nexttouch", seed=seed, numeric=True, num_threads=4
        )
        lu.run()
        assert lu.reconstruction_error() < 1e-8


# ----------------------------------------------------------------- torture ---
def test_sixteen_threads_mixed_operations(system):
    """Every core hammers its own buffer with a different op mix while
    sharing one address space; all invariants must hold throughout."""
    proc = system.create_process("torture")
    system.kernel.debug_checks = True
    buffers = {}

    def setup(t):
        for core in range(16):
            addr = yield from t.mmap(16 * PAGE_SIZE, PROT_RW, name=f"b{core}")
            buffers[core] = addr

    drive(system, setup, core=0, process=proc)

    def worker(core):
        def body(t):
            addr = buffers[core]
            n = 16 * PAGE_SIZE
            yield from t.touch(addr, n)
            kind = core % 4
            if kind == 0:
                yield from t.move_range(addr, n, (t.node + 1) % 4)
            elif kind == 1:
                yield from t.madvise(addr, n, Madvise.NEXTTOUCH)
                yield from t.touch(addr, n, bytes_per_page=64)
            elif kind == 2:
                yield from t.mprotect(addr, n, PROT_NONE)
                yield from t.mprotect(addr, n, PROT_RW)
                yield from t.touch(addr, n, bytes_per_page=64)
            else:
                yield from t.mbind(addr, n, MemPolicy.bind(3))
                yield from t.madvise(addr, n, Madvise.DONTNEED)
                yield from t.touch(addr, n)

        return body

    threads = [system.spawn(proc, core, worker(core)) for core in range(16)]
    for t in threads:
        system.run_to(t.join())
    proc.addr_space.check_invariants()
    hist = proc.addr_space.node_histogram()
    assert hist.sum() == 16 * 16  # every buffer fully populated


def test_frames_conserved_after_heavy_churn(system):
    proc = system.create_process("churn")
    baseline = [a.used for a in system.kernel.allocators]

    def body(t):
        for round_ in range(5):
            addr = yield from t.mmap(32 * PAGE_SIZE, PROT_RW)
            yield from t.touch(addr, 32 * PAGE_SIZE)
            yield from t.move_range(addr, 32 * PAGE_SIZE, (round_ + 1) % 4)
            yield from t.munmap(addr, 32 * PAGE_SIZE)

    drive(system, body, core=0, process=proc)
    assert [a.used for a in system.kernel.allocators] == baseline


def test_contents_survive_arbitrary_op_sequence():
    system = System(track_contents=True, debug_checks=True)
    proc = system.create_process("data")
    payload = np.arange(3 * PAGE_SIZE, dtype=np.uint8) % 251

    def body(t):
        addr = yield from t.mmap(3 * PAGE_SIZE, PROT_RW)
        yield from t.write_bytes(addr, payload)
        yield from t.move_range(addr, 3 * PAGE_SIZE, 1)
        yield from t.madvise(addr, 3 * PAGE_SIZE, Madvise.NEXTTOUCH)
        yield from t.migrate_to(10)
        yield from t.touch(addr, 3 * PAGE_SIZE)
        yield from t.mprotect(addr, 3 * PAGE_SIZE, PROT_NONE)
        yield from t.mprotect(addr, 3 * PAGE_SIZE, PROT_RW)
        yield from t.migrate_pages([2], [3])
        data = yield from t.read_bytes(addr, 3 * PAGE_SIZE)
        return bool((data == payload).all()), proc.addr_space.node_histogram().tolist()

    ok, hist = drive(system, body, core=0, process=proc)
    assert ok
    assert hist == [0, 0, 0, 3]  # ended on node 3 via migrate_pages
