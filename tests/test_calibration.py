"""Tests for the calibration-report module."""

import pytest

from repro.experiments.calibration import (
    Anchor,
    calibration_report,
    derive_anchors,
    sensitivity,
)
from repro.hardware.timing import opteron_8347he


def test_default_profile_hits_every_anchor():
    """The shipped profile must satisfy all of the paper's anchors."""
    for anchor in derive_anchors():
        assert anchor.ok, f"{anchor.name}: {anchor.derived} vs {anchor.paper}"


def test_report_renders_all_rows():
    report = calibration_report()
    assert report.count("ok") >= 12
    assert "OFF" not in report


def test_detuned_profile_flagged():
    bad = opteron_8347he().replace(kernel_page_copy_bw=300.0)
    anchors = {a.name: a for a in derive_anchors(bad)}
    assert not anchors["kernel page copy rate"].ok
    assert not anchors["move_pages asymptotic throughput"].ok
    assert "OFF" in calibration_report(bad)


def test_anchor_deviation_math():
    a = Anchor("x", derived=110.0, paper=100.0, unit="u", tolerance=0.05)
    assert a.deviation == pytest.approx(0.10)
    assert not a.ok


def test_sensitivity_signs_make_sense():
    sens = sensitivity(bump=0.10)
    # Faster copy -> higher throughput for both mechanisms.
    assert sens["kernel_page_copy_bw"]["move_pages MB/s"] > 0
    assert sens["kernel_page_copy_bw"]["kernel NT MB/s"] > 0
    # More control cost -> lower throughput, higher control share.
    assert sens["nt_fault_control_us"]["kernel NT MB/s"] < 0
    assert sens["nt_fault_control_us"]["NT control %"] > 0
    # move_pages control does not touch the NT fast path.
    assert sens["move_pages_page_control_us"]["kernel NT MB/s"] == 0


def test_sensitivity_custom_constant_list():
    sens = sensitivity(["memcpy_remote_bw"])
    assert list(sens) == ["memcpy_remote_bw"]
    # memcpy bandwidth affects none of the watched kernel quantities.
    assert all(v == 0 for v in sens["memcpy_remote_bw"].values())
