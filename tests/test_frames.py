"""Unit tests for the per-node frame allocators."""

import numpy as np
import pytest

from repro.errors import OutOfMemory, SimulationError
from repro.kernel.frames import NODE_STRIDE_SHIFT, FrameAllocator, node_of_frame
from repro.util import MiB, PAGE_SIZE


def make(node=0, pages=64):
    return FrameAllocator(node, pages * PAGE_SIZE)


def test_alloc_free_roundtrip():
    fa = make()
    f = fa.alloc()
    assert fa.owns(f)
    assert fa.used == 1
    fa.free_frame(f)
    assert fa.used == 0
    assert fa.free == 64


def test_frame_ids_encode_node():
    fa0 = make(node=0)
    fa2 = make(node=2)
    assert node_of_frame(fa0.alloc()) == 0
    assert node_of_frame(fa2.alloc()) == 2


def test_node_of_frame_vectorized():
    fa = make(node=3)
    frames = fa.alloc_many(10)
    assert (node_of_frame(frames) == 3).all()


def test_exhaustion_raises():
    fa = make(pages=4)
    for _ in range(4):
        fa.alloc()
    with pytest.raises(OutOfMemory):
        fa.alloc()


def test_alloc_many_all_or_nothing():
    fa = make(pages=8)
    fa.alloc_many(6)
    with pytest.raises(OutOfMemory):
        fa.alloc_many(3)
    assert fa.used == 6  # failed request had no effect
    fa.alloc_many(2)
    assert fa.free == 0


def test_alloc_many_reuses_freed_frames():
    fa = make(pages=8)
    frames = fa.alloc_many(8)
    fa.free_many(frames[:4])
    again = fa.alloc_many(4)
    assert set(map(int, again)) == set(map(int, frames[:4]))


def test_double_free_detected():
    fa = make()
    f = fa.alloc()
    fa.free_frame(f)
    with pytest.raises(SimulationError, match="double free"):
        fa.free_frame(f)


def test_foreign_free_detected():
    fa0 = make(node=0)
    fa1 = make(node=1)
    f = fa1.alloc()
    with pytest.raises(SimulationError, match="not owned"):
        fa0.free_frame(f)


def test_lifetime_counters():
    fa = make()
    frames = fa.alloc_many(5)
    fa.free_many(frames)
    assert fa.total_allocs == 5
    assert fa.total_frees == 5


def test_unique_ids_across_nodes():
    fa0 = make(node=0, pages=16)
    fa1 = make(node=1, pages=16)
    f0 = set(map(int, fa0.alloc_many(16)))
    f1 = set(map(int, fa1.alloc_many(16)))
    assert not (f0 & f1)


def test_alloc_many_zero():
    fa = make()
    assert fa.alloc_many(0).size == 0


def test_capacity_from_bytes():
    fa = FrameAllocator(0, 2 * MiB)
    assert fa.capacity == 2 * MiB // PAGE_SIZE


def test_stride_large_enough_for_8gb_nodes():
    assert (8 << 30) // PAGE_SIZE < (1 << NODE_STRIDE_SHIFT)
