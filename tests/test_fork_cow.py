"""Tests for fork + copy-on-write and its interaction with migration."""

import numpy as np
import pytest

from conftest import drive
from repro import Madvise, PROT_READ, PROT_RW, System
from repro.util import PAGE_SIZE


def forked_pair(system, npages=8, payload=b"parentdata"):
    """Parent process with a touched buffer, plus its forked child.

    Returns (parent_proc, child_proc, addr).
    """
    proc = system.create_process("parent")
    box = {}

    def body(t):
        addr = yield from t.mmap(npages * PAGE_SIZE, PROT_RW, name="buf")
        yield from t.touch(addr, npages * PAGE_SIZE)
        if system.kernel.track_contents:
            yield from t.write_bytes(addr, payload)
        child = yield from t.fork()
        box["addr"] = addr
        box["child"] = child

    drive(system, body, core=0, process=proc)
    return proc, box["child"], box["addr"]


def test_fork_shares_frames_without_copying(system):
    parent, child, addr = forked_pair(system)
    used = sum(a.used for a in system.kernel.allocators)
    assert used == 8  # still one physical copy
    pv = parent.addr_space.find_vma(addr)
    cv = child.addr_space.find_vma(addr)
    assert (pv.pt.frame == cv.pt.frame).all()
    assert not pv.pt.writable().any()  # write revoked on both sides
    assert not cv.pt.writable().any()
    assert system.kernel.stats.forks == 1


def test_child_reads_parent_data(system):
    parent, child, addr = forked_pair(system, payload=b"hello-child")

    def reader(t):
        data = yield from t.read_bytes(addr, 11)
        return bytes(data)

    assert drive(system, reader, core=4, process=child) == b"hello-child"


def test_write_isolation_after_fork(system):
    parent, child, addr = forked_pair(system, payload=b"original")

    def child_writer(t):
        yield from t.write_bytes(addr, b"CHANGED!")

    drive(system, child_writer, core=4, process=child)

    def parent_reader(t):
        data = yield from t.read_bytes(addr, 8)
        return bytes(data)

    assert drive(system, parent_reader, core=0, process=parent) == b"original"
    assert system.kernel.stats.cow_faults >= 1


def test_cow_copy_lands_on_writer_node(system):
    parent, child, addr = forked_pair(system)

    def child_writer(t):
        yield from t.touch(addr, 8 * PAGE_SIZE, write=True)
        return child.addr_space.node_histogram().tolist()

    hist = drive(system, child_writer, core=13, process=child)  # node 3
    assert hist == [0, 0, 0, 8]  # writer's copies are local to it
    # Parent still has its originals on node 0.
    assert parent.addr_space.node_histogram().tolist() == [8, 0, 0, 0]


def test_last_owner_write_reuses_frame(system):
    parent, child, addr = forked_pair(system, npages=4)

    def child_exit(t):
        yield from t.munmap(addr, 4 * PAGE_SIZE)

    drive(system, child_exit, core=4, process=child)
    used_before = sum(a.used for a in system.kernel.allocators)

    def parent_writer(t):
        yield from t.touch(addr, 4 * PAGE_SIZE, write=True)

    drive(system, parent_writer, core=0, process=parent)
    # No copies: the parent was sole owner again.
    assert sum(a.used for a in system.kernel.allocators) == used_before
    assert parent.addr_space.find_vma(addr).pt.writable().all()


def test_reads_never_break_cow(system):
    parent, child, addr = forked_pair(system)

    def reader(t):
        yield from t.touch(addr, 8 * PAGE_SIZE, write=False)

    drive(system, reader, core=4, process=child)
    assert system.kernel.stats.cow_faults == 0
    assert sum(a.used for a in system.kernel.allocators) == 8


def test_mprotect_rw_does_not_grant_write_to_cow_pages(system):
    parent, child, addr = forked_pair(system, npages=2)

    def body(t):
        yield from t.mprotect(addr, 2 * PAGE_SIZE, PROT_RW)
        vma = child.addr_space.find_vma(addr)
        before = vma.pt.writable().any()
        yield from t.write_bytes(addr, b"x")
        return bool(before)

    system.kernel.track_contents = True
    assert drive(system, body, core=4, process=child) is False
    # The write still worked (through the COW fault).
    assert system.kernel.stats.cow_faults >= 1


def test_nexttouch_on_cow_pages_migrates_by_copy(system):
    """Next-touch and COW compose: the toucher gets a local copy and
    the sibling keeps the original."""
    parent, child, addr = forked_pair(system, payload=b"shared")

    def child_body(t):
        yield from t.madvise(addr, 8 * PAGE_SIZE, Madvise.NEXTTOUCH)
        yield from t.touch(addr, 8 * PAGE_SIZE, bytes_per_page=64, write=False)
        data = yield from t.read_bytes(addr, 6)
        return child.addr_space.node_histogram().tolist(), bytes(data)

    hist, data = drive(system, child_body, core=9, process=child)  # node 2
    assert hist == [0, 0, 8, 0]
    assert data == b"shared"
    # Parent unharmed, still on node 0 with its data.
    assert parent.addr_space.node_histogram().tolist() == [8, 0, 0, 0]

    def parent_read(t):
        data = yield from t.read_bytes(addr, 6)
        return bytes(data)

    assert drive(system, parent_read, core=0, process=parent) == b"shared"


def test_destroy_process_respects_shared_frames(system):
    """exit() of the child leaves the parent's COW frames intact."""
    parent, child, addr = forked_pair(system, npages=4, payload=b"keep")
    released = system.kernel.destroy_process(child)
    assert released == 4  # its references dropped...
    assert sum(a.used for a in system.kernel.allocators) == 4  # ...frames live on

    def parent_reader(t):
        data = yield from t.read_bytes(addr, 4)
        return bytes(data)

    assert drive(system, parent_reader, core=0, process=parent) == b"keep"
    system.kernel.destroy_process(parent)
    assert sum(a.used for a in system.kernel.allocators) == 0
    assert system.kernel.frame_refs == {}


def test_destroy_process_with_running_threads_rejected(system):
    from repro.errors import SimulationError

    proc = system.create_process("busy")

    def body(t):
        yield t.kernel.env.timeout(100.0)

    system.spawn(proc, 0, body)
    with pytest.raises(SimulationError, match="still running"):
        system.kernel.destroy_process(proc)
    system.run()
    assert system.kernel.destroy_process(proc) == 0


def test_double_fork_refcounts(system):
    parent, child, addr = forked_pair(system, npages=2)

    def fork_again(t):
        grandchild = yield from t.fork()
        return grandchild

    grandchild = drive(system, fork_again, core=4, process=child)
    assert sum(a.used for a in system.kernel.allocators) == 2  # still one copy

    # Everyone unmaps; frames must be freed exactly once.
    for proc in (parent, child, grandchild):
        def unmap(t):
            yield from t.munmap(addr, 2 * PAGE_SIZE)

        drive(system, unmap, core=0, process=proc)
    assert sum(a.used for a in system.kernel.allocators) == 0
    assert system.kernel.frame_refs == {}
