"""Tests for the always-on telemetry layer (repro.obs.telemetry,
repro.obs.timeseries) and the explicit ``Ledger.traced`` turbo gate.

The load-bearing properties:

* reading the counters never disengages the fast paths — a fresh
  system with telemetry is turbo-eligible, and sampling keeps it so;
* tracer attach/detach flips turbo eligibility through the explicit
  ``Ledger.traced`` flag (no ``__dict__`` sniffing), with stacked
  tracers unwinding LIFO;
* the documented counter registry (``COUNTERS``) and the live
  ``KernelStats`` fields cannot drift apart;
* series merge in point order, invariant to how points were sharded.

Fast-vs-slow bit-identity of the counters themselves is pinned by
``tests/test_fastpath_equivalence.py`` (the counters and a closing
time-series sample are part of the diffed canonical state).
"""

from __future__ import annotations

import json

import pytest

from conftest import drive
from repro import PROT_RW, System
from repro.obs.telemetry import (
    COUNTERS,
    MIGRATION_REASONS,
    RUN_KINDS,
    KernelStats,
    stats_snapshot,
)
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    SCHEMA,
    TimeSeriesSampler,
    chrome_counter_events,
    merge_series,
)
from repro.sim.trace import Tracer
from repro.util import PAGE_SIZE


# ----------------------------------------------------------- KernelStats ----


def test_counters_start_at_zero_with_fixed_keys():
    stats = KernelStats()
    assert all(getattr(stats, name) == 0 for name in KernelStats.SCALARS)
    assert set(stats.migrations) == set(MIGRATION_REASONS)
    assert set(stats.run_ops) == set(stats.run_pages) == set(RUN_KINDS)
    assert all(v == 0 for v in stats.snapshot().values())


def test_record_helpers_and_flat_names():
    stats = KernelStats()
    stats.record_migration("move_pages", 7)
    stats.record_run("migrate", 7, ops=2)
    stats.record_run("demand_zero", 64)
    flat = stats.snapshot()
    assert flat["migrations.move_pages"] == 7
    assert flat["run_ops.migrate"] == 2
    assert flat["run_pages.migrate"] == 7
    assert flat["run_ops.demand_zero"] == 1
    assert flat["run_pages.demand_zero"] == 64
    # fixed keys: a typo'd reason/kind raises instead of minting a key
    with pytest.raises(KeyError):
        stats.record_migration("mbind", 1)
    with pytest.raises(KeyError):
        stats.record_run("hugepage", 1)


def test_registry_matches_the_live_fields():
    """``COUNTERS`` (what docs/observability.md §10 documents) expands
    to exactly the names ``stats_snapshot`` emits — same contract the
    docs checker enforces against the markdown table."""
    system = System()
    num_nodes = system.machine.num_nodes
    expected = set()
    for name, _unit, _desc in COUNTERS:
        if "<reason>" in name:
            expected |= {name.replace("<reason>", r) for r in MIGRATION_REASONS}
        elif "<kind>" in name:
            expected |= {name.replace("<kind>", k) for k in RUN_KINDS}
        elif "<N>" in name:
            expected |= {name.replace("<N>", str(n)) for n in range(num_nodes)}
        else:
            expected.add(name)
    assert set(stats_snapshot(system.kernel)) == expected


# --------------------------------------------------- turbo eligibility ----


def test_telemetry_never_trips_turbo():
    system = System()
    kernel = system.kernel
    assert kernel.turbo_ok()
    # reading counters and sampling a series is not an observer
    kernel.stats.snapshot()
    sampler = TimeSeriesSampler(kernel)
    sampler.sample()
    assert kernel.turbo_ok()


def test_tracer_attach_detach_flips_turbo_eligibility():
    """The explicit ``Ledger.traced`` flag: attach disengages the fast
    paths, detach restores them — the regression the old ``__dict__``
    sniff could not express."""
    system = System()
    kernel = system.kernel
    assert kernel.turbo_ok() and not kernel.ledger.traced
    tracer = Tracer()
    tracer.attach(kernel)
    assert kernel.ledger.traced and not kernel.turbo_ok()
    tracer.detach(kernel)
    assert not kernel.ledger.traced and kernel.turbo_ok()
    # detach on an untraced kernel is a no-op
    tracer.detach(kernel)
    assert kernel.turbo_ok()


def test_stacked_tracers_unwind_lifo():
    system = System()
    kernel = system.kernel
    first, second = Tracer(), Tracer()
    first.attach(kernel)
    second.attach(kernel)
    assert kernel.ledger.traced
    second.detach(kernel)
    # one tracer still hooked: turbo stays off, and its wrapper still
    # records charges
    assert kernel.ledger.traced and not kernel.turbo_ok()
    before = len(first.samples)
    kernel.ledger.add("probe", 1.0)
    assert len(first.samples) == before + 1
    assert not second.filter("probe")
    first.detach(kernel)
    assert not kernel.ledger.traced and kernel.turbo_ok()


def test_traced_kernel_still_counts():
    """Counters accumulate identically with a tracer attached (they
    sit below the ledger hook, on the kernel paths themselves)."""

    def run(traced: bool) -> dict:
        system = System()
        if traced:
            Tracer().attach(system.kernel)
        proc = system.create_process("p")

        def body(t):
            addr = yield from t.mmap(64 * PAGE_SIZE, PROT_RW)
            yield from t.touch(addr, 64 * PAGE_SIZE, write=True, batch=1)
            yield from t.move_range(addr, 32 * PAGE_SIZE, 1)

        drive(system, body, core=0, process=proc)
        return system.kernel.stats.snapshot()

    fast, slow = run(False), run(True)
    assert fast == slow
    assert fast["pages_migrated"] == 32
    assert fast["minor_faults"] == 64


# ------------------------------------------------------------- sampler ----


def test_sampler_points_and_snapshot_fields():
    system = System()
    proc = system.create_process("p")
    sampler = TimeSeriesSampler(system.kernel)

    def body(t):
        addr = yield from t.mmap(16 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 16 * PAGE_SIZE)

    drive(system, body, core=0, process=proc)
    point = sampler.sample()
    assert point["t_us"] == float(system.kernel.env.now)
    assert point["minor_faults"] == 16
    assert point["node_used.node0"] >= 16
    doc = sampler.to_dict()
    assert doc["schema"] == SCHEMA
    assert doc["capacity"] == DEFAULT_CAPACITY
    assert doc["dropped"] == 0 and len(doc["points"]) == 1
    json.dumps(doc)  # JSON-ready, no numpy scalars


def test_sampler_ring_bound_and_drop_accounting():
    system = System()
    sampler = TimeSeriesSampler(system.kernel, capacity=4)
    for _ in range(10):
        sampler.sample()
    assert len(sampler.points) == 4
    assert sampler.dropped == 6
    with pytest.raises(ValueError):
        TimeSeriesSampler(system.kernel, capacity=0)


def test_maybe_sample_dedups_by_simulated_time():
    system = System()
    sampler = TimeSeriesSampler(system.kernel)
    assert sampler.maybe_sample(100.0) is not None  # first call samples
    assert sampler.maybe_sample(100.0) is None  # no sim time passed
    assert len(sampler.points) == 1


def test_sampler_extra_sources_skip_none():
    system = System()
    sampler = TimeSeriesSampler(
        system.kernel,
        extra_sources={"app.p99": lambda: None, "app.rate": lambda: 3.5},
    )
    point = sampler.sample()
    assert "app.p99" not in point
    assert point["app.rate"] == 3.5


# ------------------------------------------------------------- exports ----


def test_chrome_counter_events_shape():
    system = System()
    sampler = TimeSeriesSampler(system.kernel)
    sampler.sample()
    events = chrome_counter_events(sampler.to_dict(), process_name="t")
    meta, counters = events[0], events[1:]
    assert meta["ph"] == "M" and meta["args"]["name"] == "t"
    assert counters and all(e["ph"] == "C" for e in counters)
    assert all("t_us" != e["name"] for e in counters)
    assert all(e["args"]["value"] is not None for e in counters)


def test_merge_series_order_and_accounting():
    system = System()
    one = TimeSeriesSampler(system.kernel, capacity=1)
    one.sample()
    one.sample()  # evicts: dropped=1
    two = TimeSeriesSampler(system.kernel)
    two.sample()
    merged = merge_series([one.to_dict(), None, two.to_dict()])
    assert merged["schema"] == SCHEMA
    assert merged["dropped"] == 1
    assert merged["capacity"] == DEFAULT_CAPACITY
    assert len(merged["points"]) == 2
    # order given is order kept
    assert merged["points"][0] is one.points[0] or merged["points"][0] == one.points[0]
