"""Tests for numastat allocation counters."""

import pytest

from conftest import drive
from repro import Machine, MemPolicy, PROT_RW, System
from repro.kernel.core import NumaStats
from repro.util import PAGE_SIZE


def test_local_first_touch_counts_hits(system):
    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE)

    drive(system, body, core=9)  # node 2
    ns = system.kernel.numastat
    assert ns.numa_hit[2] == 8
    assert sum(ns.numa_miss) == 0


def test_interleave_counts_interleave_hits(system):
    def body(t):
        addr = yield from t.mmap(
            8 * PAGE_SIZE, PROT_RW, policy=MemPolicy.interleave(0, 1, 2, 3)
        )
        yield from t.touch(addr, 8 * PAGE_SIZE, batch=8)

    drive(system, body, core=0)
    ns = system.kernel.numastat
    assert ns.interleave_hit == [2, 2, 2, 2]
    assert ns.numa_hit == [2, 2, 2, 2]


def test_spill_counts_miss_and_foreign():
    tiny = Machine.symmetric(2, 2, mem_per_node=8 * PAGE_SIZE)
    system = System(tiny)

    def body(t):
        addr = yield from t.mmap(12 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 12 * PAGE_SIZE)  # 8 local + 4 spill

    drive(system, body, core=0)
    ns = system.kernel.numastat
    assert ns.numa_hit[0] == 8
    assert ns.numa_miss[1] == 4  # landed on 1, wanted 0
    assert ns.numa_foreign[0] == 4  # node 0 turned them away


def test_numastat_table_shape():
    ns = NumaStats(3)
    ns.record(intended=0, got=0, count=5, interleaved=False)
    ns.record(intended=0, got=2, count=3, interleaved=False)
    table = ns.as_table()
    assert table["numa_hit"] == [5, 0, 0]
    assert table["numa_miss"] == [0, 0, 3]
    assert table["numa_foreign"] == [3, 0, 0]


def test_memory_report_includes_numastat(system):
    def body(t):
        addr = yield from t.mmap(4 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 4 * PAGE_SIZE)

    drive(system, body, core=0)
    from repro.report import memory_report

    report = memory_report(system)
    assert "numa_hit" in report
    assert "numastat" in report
