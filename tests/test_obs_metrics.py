"""MetricsRegistry: instruments, snapshots, merging, system publishing."""

import json

import pytest

from repro import MemPolicy, PROT_RW, System
from repro.errors import ReproError
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    publish_tracer,
    system_metrics,
)
from repro.sim.trace import Tracer


def small_run():
    system = System()
    proc = system.create_process("obs")

    def body(t):
        src = yield from t.mmap(1 << 16, PROT_RW, policy=MemPolicy.bind(0))
        dst = yield from t.mmap(1 << 16, PROT_RW, policy=MemPolicy.bind(1))
        yield from t.touch(src, 1 << 16)
        yield from t.touch(dst, 1 << 16)
        yield from t.memcpy(dst, src, 1 << 16)  # crosses the 0->1 link
        yield from t.move_range(src, 1 << 16, 1)

    thread = system.spawn(proc, 0, body)
    system.run_to(thread.join())
    return system


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = reg.gauge("g")
    g.set(7)
    g.set(3)
    assert g.value == 3.0
    h = reg.histogram("h")
    for v in (4.0, 1.0, 7.0):
        h.observe(v)
    assert (h.count, h.sum, h.min, h.max) == (3, 12.0, 1.0, 7.0)
    assert h.mean == pytest.approx(4.0)


def test_registry_get_or_create_and_type_conflict():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert "x" in reg and len(reg) == 1
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_snapshot_sorted_and_json_ready():
    reg = MetricsRegistry()
    reg.gauge("zz").set(1)
    reg.counter("aa").inc(2)
    reg.histogram("mm").observe(5)
    snap = reg.snapshot()
    assert list(snap) == ["aa", "mm", "zz"]
    assert snap["aa"] == {"type": "counter", "value": 2.0}
    assert snap["mm"]["mean"] == 5.0
    json.dumps(snap)  # must serialize without custom encoders


def test_empty_histogram_snapshot():
    reg = MetricsRegistry()
    reg.histogram("h")
    snap = reg.snapshot()["h"]
    assert snap["count"] == 0 and snap["min"] is None and snap["mean"] is None
    assert snap["p50"] is None and snap["p99"] is None


def test_merge_snapshots_semantics():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c").inc(2)
    b.counter("c").inc(3)
    a.gauge("g").set(5)
    b.gauge("g").set(4)
    a.histogram("h").observe(1)
    b.histogram("h").observe(9)
    b.counter("only_b").inc(1)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["c"]["value"] == 5.0  # counters add
    assert merged["g"]["value"] == 5.0  # gauges keep the peak
    h = merged["h"]
    assert (h["count"], h["min"], h["max"]) == (2, 1.0, 9.0)
    assert h["mean"] == pytest.approx(5.0)
    assert merged["only_b"]["value"] == 1.0
    assert list(merged) == sorted(merged)


def test_merge_snapshots_kind_conflict_raises_repro_error():
    """Mixing instrument kinds under one name is a structural bug in
    the publishing code, reported as a clear ReproError, not a silent
    mis-merge or a bare KeyError downstream."""
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc()
    b.gauge("x").set(1)
    with pytest.raises(ReproError, match=r"metric 'x'.*counter.*gauge"):
        merge_snapshots([a.snapshot(), b.snapshot()])
    c = MetricsRegistry()
    c.histogram("x").observe(1.0)
    with pytest.raises(ReproError, match="same instrument type"):
        merge_snapshots([a.snapshot(), c.snapshot()])


def test_histogram_quantiles_basics():
    h = Histogram("q")
    assert h.quantile(0.5) is None  # no observations yet
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    assert h.quantile(0.0) == 1.0
    assert h.quantile(1.0) == 100.0
    assert h.quantile(0.5) == pytest.approx(50.5)
    assert h.quantile(0.95) == pytest.approx(95.05)
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    dump = h.dump()
    assert dump["p50"] == pytest.approx(50.5)
    assert dump["p95"] == pytest.approx(95.05)
    assert dump["p99"] == pytest.approx(99.01)
    assert len(dump["reservoir"]) == 100


def test_histogram_reservoir_is_bounded_and_deterministic():
    def fill(name):
        h = Histogram(name)
        for v in range(10_000):
            h.observe(float(v))
        return h

    a, b = fill("same"), fill("same")
    assert len(a._reservoir) == Histogram.RESERVOIR_SIZE
    assert a._reservoir == b._reservoir  # crc32-seeded RNG, not hash()
    assert a.dump() == b.dump()
    # the sample stays representative of the whole stream
    assert a.quantile(0.5) == pytest.approx(5000, rel=0.15)
    assert a.count == 10_000 and a.max == 9999.0


def test_merged_histograms_recompute_quantiles_within_bound():
    a, b = MetricsRegistry(), MetricsRegistry()
    for v in range(600):
        a.histogram("h").observe(float(v))
    for v in range(600, 1200):
        b.histogram("h").observe(float(v))
    merged = merge_snapshots([a.snapshot(), b.snapshot()])["h"]
    assert merged["count"] == 1200
    assert len(merged["reservoir"]) <= Histogram.RESERVOIR_SIZE
    assert merged["reservoir"] == sorted(merged["reservoir"])
    assert merged["p50"] == pytest.approx(599.5, rel=0.1)
    assert merged["p99"] > merged["p95"] > merged["p50"]


def test_registry_add_adopts_external_instruments():
    reg = MetricsRegistry()
    h = Histogram("tp.phase.nt.copy.dur_us")
    h.observe(3.0)
    reg.add(h)
    reg.add(h)  # same object: no-op
    assert reg.histogram("tp.phase.nt.copy.dur_us") is h
    with pytest.raises(TypeError):
        reg.add(Histogram("tp.phase.nt.copy.dur_us"))  # different object


def test_system_metrics_publishes_every_subsystem():
    system = small_run()
    snap = system_metrics(system).snapshot()
    assert snap["kernel.pages_migrated"]["value"] == 16.0  # 64 KiB / 4 KiB
    assert snap["kernel.pages_first_touched"]["value"] == 32.0  # src + dst
    assert snap["numa.numa_hit.node0"]["value"] >= 16.0
    assert snap["ledger.grand_total_us"]["value"] > 0
    assert any(name.startswith("ledger.total_us.move_pages") for name in snap)
    assert snap["lock.acquisitions"]["value"] > 0
    assert snap["link.utilization.0->1"]["value"] > 0
    assert snap["sim.time_us"]["value"] == system.now
    assert snap["sim.events_processed"]["value"] > 0


def test_system_metrics_is_deterministic():
    a = json.dumps(system_metrics(small_run()).snapshot())
    b = json.dumps(system_metrics(small_run()).snapshot())
    assert a == b


def test_publish_tracer_surfaces_drops():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.record(float(i), 1.0, "work")
    reg = MetricsRegistry()
    publish_tracer(reg, tracer)
    snap = reg.snapshot()
    assert snap["trace.dropped"]["value"] == 3.0
    assert snap["trace.samples"]["value"] == 2.0
    assert snap["trace.sample_duration_us"]["count"] == 2
