"""Unit tests for address spaces: mmap, splits, merges, mprotect."""

import numpy as np
import pytest

from repro import System
from repro.errors import Errno, SyscallError
from repro.kernel.mempolicy import MemPolicy
from repro.kernel.vma import PROT_NONE, PROT_READ, PROT_RW
from repro.util import PAGE_SIZE


@pytest.fixture
def space():
    sys_ = System()
    proc = sys_.create_process("as")
    return proc.addr_space


def test_mmap_returns_page_aligned_disjoint_vmas(space):
    a = space.mmap(10 * PAGE_SIZE, PROT_RW, name="a")
    b = space.mmap(5 * PAGE_SIZE, PROT_RW, name="b")
    assert a.start % PAGE_SIZE == 0
    assert b.start >= a.end + PAGE_SIZE  # guard gap
    space.check_invariants()


def test_mmap_rounds_up(space):
    vma = space.mmap(PAGE_SIZE + 1, PROT_RW)
    assert vma.npages == 2


def test_mmap_rejects_empty(space):
    with pytest.raises(SyscallError):
        space.mmap(0, PROT_RW)


def test_find_vma(space):
    vma = space.mmap(4 * PAGE_SIZE, PROT_RW)
    assert space.find_vma(vma.start) is vma
    assert space.find_vma(vma.start + 3 * PAGE_SIZE + 17) is vma
    assert space.find_vma(vma.end) is None
    assert space.find_vma(vma.start - 1) is None


def test_resolve(space):
    vma = space.mmap(4 * PAGE_SIZE, PROT_RW)
    got = space.resolve(vma.start + 2 * PAGE_SIZE + 5)
    assert got == (vma, 2)


def test_protection_split_and_merge(space):
    vma = space.mmap(10 * PAGE_SIZE, PROT_RW, name="buf")
    mid = vma.start + 3 * PAGE_SIZE
    space.apply_protection(mid, 4 * PAGE_SIZE, PROT_NONE)
    vmas = [v for v in space.vmas if v.name == "buf"]
    assert len(vmas) == 3
    assert [v.prot for v in vmas] == [PROT_RW, PROT_NONE, PROT_RW]
    assert [v.npages for v in vmas] == [3, 4, 3]
    # Restoring merges the three back into one.
    space.apply_protection(mid, 4 * PAGE_SIZE, PROT_RW)
    vmas = [v for v in space.vmas if v.name == "buf"]
    assert len(vmas) == 1
    assert vmas[0].npages == 10
    space.check_invariants()


def test_protection_unmapped_range_enomem(space):
    vma = space.mmap(2 * PAGE_SIZE, PROT_RW)
    with pytest.raises(SyscallError) as exc:
        space.apply_protection(vma.start, 4 * PAGE_SIZE, PROT_NONE)
    assert exc.value.errno == Errno.ENOMEM


def test_protection_updates_hardware_bits(space):
    vma = space.mmap(4 * PAGE_SIZE, PROT_RW)
    frames = np.arange(4, dtype=np.int64)
    vma.pt.map_pages(slice(None), frames, np.zeros(4, dtype=np.int16), True)
    space.apply_protection(vma.start, 4 * PAGE_SIZE, PROT_READ)
    vma = space.find_vma(vma.start)
    assert vma.pt.present().all()
    assert not vma.pt.writable().any()
    space.apply_protection(vma.start, 4 * PAGE_SIZE, PROT_NONE)
    vma = space.find_vma(vma.start)
    assert not vma.pt.present().any()
    assert vma.pt.populated().all()  # frames kept: this is the user-NT trick


def test_next_touch_pages_stay_invalid_across_mprotect(space):
    vma = space.mmap(4 * PAGE_SIZE, PROT_RW)
    frames = np.arange(4, dtype=np.int64)
    vma.pt.map_pages(slice(None), frames, np.zeros(4, dtype=np.int16), True)
    vma.pt.mark_next_touch(slice(0, 2))
    space.apply_protection(vma.start, 4 * PAGE_SIZE, PROT_RW)
    vma = space.find_vma(vma.start)
    assert not vma.pt.present()[:2].any()
    assert vma.pt.next_touch()[:2].all()
    assert vma.pt.present()[2:].all()


def test_munmap_releases_frames():
    sys_ = System()
    proc = sys_.create_process("munmap")
    space = proc.addr_space
    vma = space.mmap(8 * PAGE_SIZE, PROT_RW)
    frames = sys_.kernel.alloc_on(1, 8)
    vma.pt.map_pages(slice(None), frames, np.ones(8, dtype=np.int16), True)
    used_before = sys_.kernel.allocators[1].used
    freed = space.munmap(vma.start, 8 * PAGE_SIZE)
    assert freed == 8
    assert sys_.kernel.allocators[1].used == used_before - 8
    assert space.find_vma(vma.start) is None


def test_munmap_partial(space):
    vma = space.mmap(8 * PAGE_SIZE, PROT_RW, name="buf")
    space.munmap(vma.start + 2 * PAGE_SIZE, 2 * PAGE_SIZE)
    vmas = [v for v in space.vmas if v.name == "buf"]
    assert [v.npages for v in vmas] == [2, 4]
    assert space.find_vma(vma.start + 2 * PAGE_SIZE) is None
    space.check_invariants()


def test_apply_policy_splits_and_merges(space):
    vma = space.mmap(8 * PAGE_SIZE, PROT_RW, name="buf")
    pol = MemPolicy.interleave(0, 1)
    space.apply_policy(vma.start, 4 * PAGE_SIZE, pol)
    vmas = [v for v in space.vmas if v.name == "buf"]
    assert len(vmas) == 2
    assert vmas[0].policy == pol and vmas[1].policy is None
    space.apply_policy(vma.start + 4 * PAGE_SIZE, 4 * PAGE_SIZE, pol)
    vmas = [v for v in space.vmas if v.name == "buf"]
    assert len(vmas) == 1 and vmas[0].policy == pol


def test_range_segments_over_hole(space):
    vma = space.mmap(2 * PAGE_SIZE, PROT_RW)
    with pytest.raises(SyscallError) as exc:
        list(space.range_segments(vma.start, 4 * PAGE_SIZE))
    assert exc.value.errno == Errno.EFAULT


def test_node_histogram_spans_vmas():
    sys_ = System()
    proc = sys_.create_process("hist")
    space = proc.addr_space
    a = space.mmap(3 * PAGE_SIZE, PROT_RW)
    b = space.mmap(2 * PAGE_SIZE, PROT_RW)
    a.pt.map_pages(slice(None), sys_.kernel.alloc_on(0, 3), np.zeros(3, dtype=np.int16), True)
    b.pt.map_pages(slice(None), sys_.kernel.alloc_on(2, 2), np.full(2, 2, dtype=np.int16), True)
    assert list(space.node_histogram()) == [3, 0, 2, 0]
