"""Tests for cpusets — the administrative migrate_pages use case."""

import pytest

from conftest import drive
from repro import PROT_RW, System
from repro.errors import ConfigurationError, OutOfMemory, SimulationError
from repro.kernel.mempolicy import MemPolicy
from repro.sched.cpuset import CpusetManager
from repro.sched.thread import SimThread
from repro.util import PAGE_SIZE


@pytest.fixture
def mgr(system):
    return CpusetManager(system)


def test_create_and_get(mgr):
    left = mgr.create("left", cores=(0, 1, 2, 3), mems=(0,))
    assert mgr.get("left") is left
    with pytest.raises(ConfigurationError):
        mgr.create("left", cores=(4,), mems=(1,))
    with pytest.raises(ConfigurationError):
        mgr.create("overlap", cores=(3, 4), mems=(1,))  # core 3 taken
    with pytest.raises(ConfigurationError):
        mgr.create("bad", cores=(99,), mems=(0,))


def test_allocation_confined_to_mems(system, mgr):
    left = mgr.create("left", cores=(0, 1), mems=(0,))
    proc = system.create_process("confined")
    mgr.attach(proc, left)

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        return proc.addr_space.node_histogram().tolist()

    assert drive(system, body, core=0, process=proc) == [8, 0, 0, 0]


def test_interleave_clamped_to_mems(system, mgr):
    pair = mgr.create("pair", cores=(0, 1, 4, 5), mems=(0, 1))
    proc = system.create_process("ilv")
    mgr.attach(proc, pair)

    def body(t):
        addr = yield from t.mmap(
            8 * PAGE_SIZE, PROT_RW, policy=MemPolicy.interleave(0, 1, 2, 3)
        )
        yield from t.touch(addr, 8 * PAGE_SIZE, batch=8)
        return proc.addr_space.node_histogram().tolist()

    hist = drive(system, body, core=0, process=proc)
    assert hist[2] == 0 and hist[3] == 0  # never outside the cpuset
    assert sum(hist) == 8


def test_bind_outside_mems_fails(system, mgr):
    left = mgr.create("left", cores=(0,), mems=(0,))
    proc = system.create_process("boom")
    mgr.attach(proc, left)

    def body(t):
        addr = yield from t.mmap(PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(3))
        yield from t.touch(addr, PAGE_SIZE)

    thread = system.spawn(proc, 0, body)
    with pytest.raises(OutOfMemory):
        system.run_to(thread.join())


def test_thread_placement_confined(system, mgr):
    left = mgr.create("left", cores=(0, 1), mems=(0,))
    proc = system.create_process("place")
    mgr.attach(proc, left)
    with pytest.raises(SimulationError, match="cpuset"):
        SimThread(proc, 8)

    def body(t):
        yield from t.migrate_to(9)

    thread = system.spawn(proc, 0, body)
    with pytest.raises(SimulationError, match="cpuset"):
        system.run_to(thread.join())


def test_move_rehomes_process(system, mgr):
    """The Section 2.3 story: an admin splits the machine and later
    moves a whole job — threads AND memory — to the other half."""
    left = mgr.create("left", cores=(0, 1, 2, 3), mems=(0,))
    right = mgr.create("right", cores=(12, 13, 14, 15), mems=(3,))
    job = system.create_process("job")
    mgr.attach(job, left)
    box = {}

    def worker(t):
        addr = yield from t.mmap(32 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 32 * PAGE_SIZE)
        box["addr"] = addr
        # Keep running while the admin moves us.
        for _ in range(40):
            yield t.kernel.env.timeout(50.0)
            yield from t.touch(addr, 32 * PAGE_SIZE, bytes_per_page=64)
        box["final_node"] = t.node

    w = system.spawn(job, 0, worker)
    admin_proc = system.create_process("admin")

    def admin(t):
        yield t.kernel.env.timeout(300.0)
        moved = yield from mgr.move(t, job, right)
        box["moved"] = moved

    system.spawn(admin_proc, 8, admin)
    system.run_to(w.join())
    system.run()
    assert box["moved"] == 32
    assert box["final_node"] == 3
    assert job.addr_space.node_histogram().tolist() == [0, 0, 0, 32]
    assert mgr.cpuset_of(job) is right


def test_move_to_same_set_is_noop(system, mgr):
    left = mgr.create("left", cores=(0,), mems=(0,))
    proc = system.create_process("same")
    mgr.attach(proc, left)

    def body(t):
        moved = yield from mgr.move(t, proc, left)
        return moved

    assert drive(system, body, core=0, process=proc) == 0


def test_move_unattached_process_rejected(system, mgr):
    right = mgr.create("right", cores=(8,), mems=(2,))
    proc = system.create_process("loose")

    def body(t):
        yield from mgr.move(t, proc, right)

    # the admin thread lives in another (unconfined) process
    admin = system.create_process("admin")
    thread = system.spawn(admin, 0, body)
    with pytest.raises(ConfigurationError):
        system.run_to(thread.join())
