"""Property-based tests (hypothesis) on core invariants.

These exercise the data structures with adversarial inputs the
hand-written tests would not think of: random mmap/mprotect/madvise
sequences must keep the address space consistent; frame allocators must
conserve frames; migration must preserve placement totals and page
payloads; interleaving must be exact.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Madvise, MemPolicy, PROT_NONE, PROT_READ, PROT_RW, System
from repro.kernel.frames import FrameAllocator
from repro.kernel.pagetable import PageTable
from repro.sim import BandwidthResource, Environment, Mutex
from repro.util import PAGE_SIZE

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------- frame pools ----
@_SETTINGS
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=32)), max_size=40
    )
)
def test_frame_allocator_conserves_frames(ops):
    fa = FrameAllocator(1, 256 * PAGE_SIZE)
    live: list[np.ndarray] = []
    for is_alloc, count in ops:
        if is_alloc and fa.free >= count:
            live.append(fa.alloc_many(count))
        elif not is_alloc and live:
            fa.free_many(live.pop())
    held = sum(a.size for a in live)
    assert fa.used == held
    assert fa.free == fa.capacity - held
    for arr in live:
        fa.free_many(arr)
    assert fa.used == 0


# ------------------------------------------------------------ page table ----
@_SETTINGS
@given(
    n=st.integers(min_value=2, max_value=128),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_pagetable_mark_clear_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    pt = PageTable(n)
    populated = rng.random(n) < 0.7
    idx = np.nonzero(populated)[0]
    if idx.size:
        pt.map_pages(idx, idx + 100, np.zeros(idx.size, dtype=np.int16), True)
    marked = pt.mark_next_touch(slice(None))
    assert marked == idx.size
    pt.check_invariants()
    pt.clear_next_touch(slice(None), writable=True)
    pt.check_invariants()
    assert pt.present().sum() == idx.size
    assert not pt.next_touch().any()


@_SETTINGS
@given(
    n=st.integers(min_value=2, max_value=64),
    at=st.integers(min_value=1, max_value=63),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_pagetable_split_preserves_every_pte(n, at, seed):
    if at >= n:
        at = n - 1
    rng = np.random.default_rng(seed)
    pt = PageTable(n)
    idx = np.nonzero(rng.random(n) < 0.5)[0]
    if idx.size:
        pt.map_pages(idx, idx + 7, np.full(idx.size, 2, dtype=np.int16), False)
    frames_before = pt.frame.copy()
    left, right = pt.split(at)
    rejoined = np.concatenate([left.frame, right.frame])
    assert (rejoined == frames_before).all()


# ------------------------------------------------------- address spaces ----
@_SETTINGS
@given(
    data=st.data(),
    npages=st.integers(min_value=4, max_value=64),
)
def test_random_mprotect_sequences_keep_space_consistent(data, npages):
    system = System()
    proc = system.create_process("prop")
    space = proc.addr_space
    vma = space.mmap(npages * PAGE_SIZE, PROT_RW, name="buf")
    base = vma.start
    for _ in range(data.draw(st.integers(min_value=1, max_value=8))):
        start = data.draw(st.integers(min_value=0, max_value=npages - 1))
        length = data.draw(st.integers(min_value=1, max_value=npages - start))
        prot = data.draw(st.sampled_from([PROT_NONE, PROT_READ, PROT_RW]))
        space.apply_protection(base + start * PAGE_SIZE, length * PAGE_SIZE, prot)
        space.check_invariants()
    # Page count over the original range is conserved.
    total = sum(
        stop - first for _v, first, stop in space.range_segments(base, npages * PAGE_SIZE)
    )
    assert total == npages


@_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_interleave_distribution_is_exact(seed):
    rng = np.random.default_rng(seed)
    nodes = tuple(sorted(rng.choice(4, size=rng.integers(1, 5), replace=False).tolist()))
    npages = int(rng.integers(4, 128))
    system = System()
    proc = system.create_process("ilv")

    def body(t):
        addr = yield from t.mmap(
            npages * PAGE_SIZE, PROT_RW, policy=MemPolicy.interleave(*nodes)
        )
        yield from t.touch(addr, npages * PAGE_SIZE, batch=16)
        return proc.addr_space.node_histogram()

    thread = system.spawn(proc, 0, body)
    hist = system.run_to(thread.join())
    for node in range(4):
        expected = sum(1 for v in range(npages) if nodes[v % len(nodes)] == node)
        assert hist[node] == expected


# ------------------------------------------------------------- migration ----
@_SETTINGS
@given(
    npages=st.integers(min_value=1, max_value=48),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_random_move_pages_preserve_contents_and_totals(npages, seed):
    rng = np.random.default_rng(seed)
    system = System(track_contents=True, debug_checks=True)
    proc = system.create_process("mig")
    payload = rng.integers(0, 256, size=64, dtype=np.uint8)

    def body(t):
        addr = yield from t.mmap(npages * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, npages * PAGE_SIZE)
        yield from t.write_bytes(addr, payload)
        for _ in range(3):
            pages = addr + PAGE_SIZE * rng.permutation(npages)[: rng.integers(1, npages + 1)]
            dests = rng.integers(0, 4, size=pages.size)
            yield from t.move_pages(np.sort(pages), dests)
        data = yield from t.read_bytes(addr, 64)
        return data

    thread = system.spawn(proc, 0, body)
    data = system.run_to(thread.join())
    assert (data == payload).all()
    assert proc.addr_space.node_histogram().sum() == npages


@_SETTINGS
@given(
    npages=st.integers(min_value=1, max_value=64),
    core=st.integers(min_value=0, max_value=15),
)
def test_next_touch_always_lands_on_toucher_node(npages, core):
    system = System()
    proc = system.create_process("nt")

    def body(t):
        addr = yield from t.mmap(npages * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, npages * PAGE_SIZE, batch=16)
        yield from t.madvise(addr, npages * PAGE_SIZE, Madvise.NEXTTOUCH)
        yield from t.migrate_to(core)
        yield from t.touch(addr, npages * PAGE_SIZE, bytes_per_page=64, batch=8)
        return proc.addr_space.node_histogram()

    thread = system.spawn(proc, 0, body)
    hist = system.run_to(thread.join())
    node = system.machine.node_of_core(core)
    assert hist[node] == npages
    assert hist.sum() == npages


# ---------------------------------------------------------------- engine ----
@_SETTINGS
@given(
    holds=st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10)
)
def test_mutex_serializes_any_schedule(holds):
    env = Environment()
    lock = Mutex(env)
    intervals = []

    def worker(hold):
        yield lock.acquire()
        start = env.now
        yield env.timeout(hold)
        lock.release()
        intervals.append((start, env.now))

    for hold in holds:
        env.process(worker(hold))
    env.run()
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-9  # no overlap ever
    assert env.now == pytest.approx(sum(holds))


@_SETTINGS
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=8)
)
def test_bandwidth_resource_conserves_work(sizes):
    env = Environment()
    link = BandwidthResource(env, capacity=100.0)

    def proc(nbytes):
        yield link.transfer(nbytes)

    for nbytes in sizes:
        env.process(proc(nbytes))
    env.run()
    assert link.bytes_transferred == pytest.approx(sum(sizes), rel=1e-6)
    # Total time is bounded by serial/parallel extremes.
    assert env.now >= max(sizes) / 100.0 - 1e-6
    assert env.now <= sum(sizes) / 100.0 + 1e-6
