"""Tests for the swap subsystem and the rejected swap-based next-touch."""

import numpy as np
import pytest

from conftest import drive
from repro import PROT_NONE, PROT_RW, System
from repro.errors import Errno, SyscallError
from repro.kernel.swap import SwapDevice, attach_swap, swapped_pages
from repro.nexttouch import LazyKernelNextTouch, SwapBasedNextTouch
from repro.util import PAGE_SIZE


def swap_system(**kwargs):
    system = System(track_contents=True, debug_checks=True, **kwargs)
    attach_swap(system.kernel)
    return system


def test_swap_out_frees_frames_and_records_slots():
    system = swap_system()
    proc = system.create_process("sw")

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        used_before = system.kernel.allocators[0].used
        written = yield from t.swap_out(addr, 8 * PAGE_SIZE)
        vma = proc.addr_space.find_vma(addr)
        return written, used_before - system.kernel.allocators[0].used, swapped_pages(vma).size

    written, freed, on_swap = drive(system, body, core=0, process=proc)
    assert written == 8
    assert freed == 8
    assert on_swap == 8
    assert system.kernel.swap.used == 8


def test_swap_in_lands_on_toucher_node_with_data():
    """The rejected design does implement next-touch semantics."""
    system = swap_system()
    proc = system.create_process("swin")

    def body(t):
        addr = yield from t.mmap(4 * PAGE_SIZE, PROT_RW)
        payload = bytes(range(200))
        yield from t.write_bytes(addr + 50, payload)
        yield from t.swap_out(addr, 4 * PAGE_SIZE)
        yield from t.migrate_to(13)  # node 3
        data = yield from t.read_bytes(addr + 50, len(payload))
        partial = proc.addr_space.node_histogram().tolist()
        yield from t.touch(addr, 4 * PAGE_SIZE)
        return bytes(data) == payload, partial, proc.addr_space.node_histogram().tolist()

    ok, partial, full = drive(system, body, core=0, process=proc)
    assert ok
    assert partial == [0, 0, 0, 1]  # lazily: only the read page came back
    assert full == [0, 0, 0, 4]
    assert system.kernel.swap.used == 0  # slots released after swap-in


def test_swap_requires_device():
    system = System()

    def body(t):
        addr = yield from t.mmap(PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, PAGE_SIZE)
        yield from t.swap_out(addr, PAGE_SIZE)

    with pytest.raises(SyscallError) as exc:
        drive(system, body)
    assert exc.value.errno == Errno.ENODEV


def test_swap_rejects_shared_mappings():
    system = swap_system()

    def body(t):
        addr = yield from t.mmap(PAGE_SIZE, PROT_RW, shared=True)
        yield from t.touch(addr, PAGE_SIZE)
        yield from t.swap_out(addr, PAGE_SIZE)

    with pytest.raises(SyscallError) as exc:
        drive(system, body)
    assert exc.value.errno == Errno.EINVAL


def test_swap_space_exhaustion():
    system = System(track_contents=True)
    attach_swap(system.kernel, SwapDevice(system.env, capacity_pages=4))

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE)
        yield from t.swap_out(addr, 8 * PAGE_SIZE)

    with pytest.raises(SyscallError) as exc:
        drive(system, body)
    assert exc.value.errno == Errno.ENOMEM


def test_swap_slots_survive_vma_split_and_merge():
    system = swap_system()
    proc = system.create_process("split")

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.write_bytes(addr + 2 * PAGE_SIZE, b"keepme")
        yield from t.touch(addr, 8 * PAGE_SIZE)
        yield from t.swap_out(addr, 8 * PAGE_SIZE)
        # Split the VMA while pages are on swap, then restore.
        yield from t.mprotect(addr + 2 * PAGE_SIZE, 2 * PAGE_SIZE, PROT_NONE)
        yield from t.mprotect(addr + 2 * PAGE_SIZE, 2 * PAGE_SIZE, PROT_RW)
        data = yield from t.read_bytes(addr + 2 * PAGE_SIZE, 6)
        return bytes(data)

    assert drive(system, body, core=0, process=proc) == b"keepme"


def test_swap_based_next_touch_works_but_is_terrible():
    """Section 3.2's verdict, measured: the swap path migrates pages
    to the next toucher — at two orders of magnitude worse latency
    than the kernel next-touch."""

    def measure(strategy_factory, needs_swap):
        system = System()
        if needs_swap:
            attach_swap(system.kernel)
        proc = system.create_process("cmp")
        shared = {}

        def owner(t):
            addr = yield from t.mmap(64 * PAGE_SIZE, PROT_RW)
            yield from t.touch(addr, 64 * PAGE_SIZE)
            shared["addr"] = addr

        drive(system, owner, core=0, process=proc)
        strategy = strategy_factory()

        def worker(t):
            t0 = system.now
            yield from strategy.migrate(t, shared["addr"], 64 * PAGE_SIZE, None)
            yield from t.touch(shared["addr"], 64 * PAGE_SIZE, bytes_per_page=64)
            return system.now - t0

        elapsed = drive(system, worker, core=13, process=proc)
        hist = proc.addr_space.node_histogram().tolist()
        return elapsed, hist

    swap_time, swap_hist = measure(SwapBasedNextTouch, True)
    nt_time, nt_hist = measure(LazyKernelNextTouch, False)
    assert swap_hist == nt_hist == [0, 0, 0, 64]  # same end state...
    assert swap_time > nt_time * 30  # ...at disk speed


def test_device_counters():
    system = swap_system()

    def body(t):
        addr = yield from t.mmap(4 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 4 * PAGE_SIZE)
        yield from t.swap_out(addr, 4 * PAGE_SIZE)
        yield from t.touch(addr, 4 * PAGE_SIZE)

    drive(system, body)
    dev = system.kernel.swap
    assert dev.pages_out == 4
    assert dev.pages_in == 4


def test_mlock_pins_against_swap_out():
    """mlocked ranges refuse swap-out (EPERM, as Linux does)."""
    system = swap_system()
    proc = system.create_process("pin")

    def body(t):
        addr = yield from t.mmap(4 * PAGE_SIZE, PROT_RW)
        resident = yield from t.mlock(addr, 4 * PAGE_SIZE)
        assert resident == 4  # mlock faults the range in
        try:
            yield from t.swap_out(addr, 4 * PAGE_SIZE)
        except SyscallError as exc:
            return exc.errno
        return None

    errno = drive(system, body, core=0, process=proc)
    assert errno == Errno.EPERM
    # munlock re-enables swap-out.
    shared = {}

    def unlock_and_swap(t):
        addr = yield from t.mmap(2 * PAGE_SIZE, PROT_RW)
        yield from t.mlock(addr, 2 * PAGE_SIZE)
        yield from t.mlock(addr, 2 * PAGE_SIZE, lock=False)
        written = yield from t.swap_out(addr, 2 * PAGE_SIZE)
        return written

    assert drive(system, unlock_and_swap, core=0, process=proc) == 2
