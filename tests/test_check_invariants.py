"""Each invariant checker fires on a deliberately broken kernel state
and stays quiet on a healthy one."""

import numpy as np
import pytest

from conftest import drive
from repro.check import (
    INVARIANTS,
    InvariantViolation,
    assert_invariants,
    check_kernel,
    check_system,
)
from repro.kernel.pagetable import PTE_PRESENT, PTE_WRITE
from repro.kernel.vma import PROT_RW
from repro.util.units import PAGE_SIZE


def populated_system(system):
    """A system with a touched mapping (frames, stats, ledger activity)."""

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 8 * PAGE_SIZE, write=True, bytes_per_page=0.0)
        return addr

    addr = drive(system, body)
    return system, addr


def fired(kernel, name):
    """Violations from one named checker."""
    return [v for v in check_kernel(kernel, [name])]


def test_clean_system_passes_every_invariant(system):
    populated_system(system)
    assert check_system(system) == []
    assert_invariants(system.kernel)  # must not raise


def test_vma_layout_detects_desynced_index(system):
    _, _ = populated_system(system)
    space = system.kernel.processes[0].addr_space
    space._starts[0] -= PAGE_SIZE
    assert fired(system.kernel, "vma_layout")


def test_pte_consistency_detects_present_without_frame(system):
    populated_system(system)
    proc = system.kernel.processes[0]

    def body(t):
        return (yield from t.mmap(4 * PAGE_SIZE, PROT_RW))

    drive(system, body, process=proc)
    vma = proc.addr_space.vmas[-1]  # untouched mapping: no frames
    vma.pt.flags[0] |= np.uint16(PTE_PRESENT)
    assert fired(system.kernel, "pte_consistency")


def test_pte_consistency_detects_stale_node_cache(system):
    populated_system(system)
    vma = system.kernel.processes[0].addr_space.vmas[0]
    vma.pt.node[0] = (int(vma.pt.node[0]) + 1) % system.kernel.machine.num_nodes
    assert fired(system.kernel, "pte_consistency")


def test_frame_refcounts_detects_leaked_reference(system):
    populated_system(system)
    vma = system.kernel.processes[0].addr_space.vmas[0]
    frame = int(vma.pt.frame[0])
    system.kernel.frame_refs[frame] = system.kernel.frame_refs.get(frame, 1) + 1
    assert fired(system.kernel, "frame_refcounts")


def test_node_accounting_detects_unmapped_allocation(system):
    populated_system(system)
    system.kernel.alloc_on(0, 1)  # allocated but never mapped anywhere
    assert fired(system.kernel, "node_accounting")


def test_cow_write_exclusion_detects_write_on_shared_frame(system):
    populated_system(system)
    parent = system.kernel.processes[0]

    def body(t):
        return (yield from t.fork())

    drive(system, body, process=parent)
    vma = parent.addr_space.vmas[0]
    vma.pt.flags[0] |= np.uint16(PTE_WRITE)  # scribble on a shared frame
    assert fired(system.kernel, "cow_write_exclusion")


def test_numastat_balance_detects_unbalanced_miss(system):
    populated_system(system)
    system.kernel.numastat.numa_miss[0] += 1  # miss with no matching foreign
    assert fired(system.kernel, "numastat_balance")


def test_ledger_consistency_detects_phantom_total(system):
    populated_system(system)
    system.kernel.ledger.totals["phantom.tag"] = 1.0  # total without events
    assert fired(system.kernel, "ledger_consistency")


def test_swap_consistency_detects_leaked_slot(system):
    populated_system(system)
    vma = system.kernel.processes[0].addr_space.vmas[0]
    table = np.full(vma.pt.npages, -1, dtype=np.int64)
    table[1] = 7  # references a slot no device ever allocated
    vma.pt.frame[1] = -1
    vma.pt.node[1] = -1
    vma.pt.flags[1] = 0
    vma.pt._swap_slots = table
    assert fired(system.kernel, "swap_consistency")


def test_every_registered_invariant_has_a_breaker():
    """The list above must cover the whole registry — adding an
    invariant without a deliberately-broken-state test fails here."""
    covered = {
        "vma_layout",
        "pte_consistency",
        "frame_refcounts",
        "node_accounting",
        "cow_write_exclusion",
        "numastat_balance",
        "ledger_consistency",
        "swap_consistency",
    }
    assert covered == set(INVARIANTS)


def test_unknown_invariant_name_raises(system):
    with pytest.raises(KeyError):
        check_kernel(system.kernel, ["no_such_invariant"])


def test_assert_invariants_raises_with_structured_violations(system):
    populated_system(system)
    system.kernel.numastat.numa_miss[0] += 1
    with pytest.raises(InvariantViolation) as exc:
        assert_invariants(system.kernel)
    assert any(v.invariant == "numastat_balance" for v in exc.value.violations)
