"""Failure injection: exhaustion mid-operation must leave sane state."""

import numpy as np
import pytest

from conftest import drive
from repro import Machine, Madvise, MemPolicy, PROT_RW, System
from repro.errors import OutOfMemory
from repro.util import PAGE_SIZE


def cramped(node_pages=32):
    """A machine whose nodes are nearly too small to migrate into."""
    return System(Machine.symmetric(2, 2, mem_per_node=node_pages * PAGE_SIZE),
                  debug_checks=True)


def test_nt_migration_oom_leaves_consistent_state():
    """Next-touch migration that runs the destination node out of
    frames raises — and the not-yet-migrated pages keep their frames
    and their NT marks (nothing is lost or leaked)."""
    system = cramped(32)
    proc = system.create_process("oom-nt")
    shared = {}

    def owner(t):
        # 24 pages on node 0...
        buf = yield from t.mmap(24 * PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(0))
        yield from t.touch(buf, 24 * PAGE_SIZE)
        # ...and node 1 pre-filled so only 8 frames remain there.
        filler = yield from t.mmap(24 * PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(1))
        yield from t.touch(filler, 24 * PAGE_SIZE)
        yield from t.madvise(buf, 24 * PAGE_SIZE, Madvise.NEXTTOUCH)
        shared["buf"] = buf

    drive(system, owner, core=0, process=proc)

    def toucher(t):
        yield from t.touch(shared["buf"], 24 * PAGE_SIZE, bytes_per_page=64, batch=4)

    thread = system.spawn(proc, 2, toucher)  # node 1: only 8 frames free
    with pytest.raises(OutOfMemory):
        system.run_to(thread.join())
    # Consistency: every page still has exactly one frame somewhere.
    proc.addr_space.check_invariants()
    vma = proc.addr_space.find_vma(shared["buf"])
    assert vma.pt.populated().all()
    hist = proc.addr_space.node_histogram()
    assert hist.sum() == 48  # 24 buf + 24 filler, nothing leaked
    # The pages that made it over are exactly node 1's last frames.
    assert 0 < vma.pt.node_histogram(2)[1] <= 8
    # Unmigrated pages still carry their next-touch mark.
    assert vma.pt.next_touch().any()
    # No frame went missing from the allocators.
    used = sum(a.used for a in system.kernel.allocators)
    assert used == 48


def test_move_pages_oom_mid_request():
    """Synchronous migration into a full node fails part-way; moved
    pages stay moved, the rest stay put, frames conserved."""
    system = cramped(32)
    proc = system.create_process("oom-mv")

    def body(t):
        buf = yield from t.mmap(24 * PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(0))
        yield from t.touch(buf, 24 * PAGE_SIZE)
        filler = yield from t.mmap(28 * PAGE_SIZE, PROT_RW, policy=MemPolicy.bind(1))
        yield from t.touch(filler, 28 * PAGE_SIZE)
        yield from t.move_range(buf, 24 * PAGE_SIZE, 1)  # only 4 free

    thread = system.spawn(proc, 0, body)
    with pytest.raises(OutOfMemory):
        system.run_to(thread.join())
    proc.addr_space.check_invariants()
    assert sum(a.used for a in system.kernel.allocators) == 52
    assert proc.addr_space.node_histogram().sum() == 52


def test_fork_then_oom_cow_break():
    """COW breaking under memory pressure: the failed writer's state
    stays readable; the sibling is unaffected."""
    system = System(
        Machine.symmetric(2, 2, mem_per_node=16 * PAGE_SIZE),
        track_contents=True,
        debug_checks=True,
    )
    parent = system.create_process("p")
    box = {}

    def setup(t):
        addr = yield from t.mmap(10 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 10 * PAGE_SIZE)
        yield from t.write_bytes(addr, b"SAFE")
        child = yield from t.fork()
        box.update(addr=addr, child=child)

    thread = system.spawn(parent, 0, setup)
    system.run_to(thread.join())
    child = box["child"]

    def child_writer(t):
        # Node 0 has 16 - 10 = 6 frames left; breaking 10 COW pages
        # locally must run out part-way.
        yield from t.touch(box["addr"], 10 * PAGE_SIZE, write=True)

    w = system.spawn(child, 0, child_writer)
    with pytest.raises(OutOfMemory):
        system.run_to(w.join())
    # Parent's data is intact despite the child's failed writes.
    def parent_reader(t):
        data = yield from t.read_bytes(box["addr"], 4)
        return bytes(data)

    r = system.spawn(parent, 1, parent_reader)
    assert system.run_to(r.join()) == b"SAFE"
    parent.addr_space.check_invariants()
    child.addr_space.check_invariants()
