"""Tests for the phase profiler (repro.obs.profile)."""

import pytest

from repro.experiments.common import fresh_system
from repro.experiments.fig7_scalability import measure_parallel_migration
from repro.obs import MetricsRegistry, PhaseProfile, record_tracepoints
from repro.obs.tracepoints import TracepointEvent


def _event(name, t_us, sys=0, **fields):
    return TracepointEvent(name, float(t_us), sys, fields)


# ----------------------------------------------------------- unit: fold logic --

def test_fault_spans_pair_per_thread_and_nest():
    events = [
        _event("fault:enter", 10.0, pid=1, tid=1, core=0, addr=0, write=True),
        _event("fault:enter", 12.0, pid=1, tid=2, core=1, addr=0, write=True),
        # nested re-entry of tid 1
        _event("fault:enter", 13.0, pid=1, tid=1, core=0, addr=64, write=False),
        _event("fault:exit", 14.0, pid=1, tid=1),
        _event("fault:exit", 20.0, pid=1, tid=1),
        _event("fault:exit", 15.0, pid=1, tid=2),
    ]
    profile = PhaseProfile.from_events(events)
    assert profile.unmatched_faults == 0
    durations = sorted(s.duration_us for s in profile.fault_spans)
    assert durations == [1.0, 3.0, 10.0]
    assert profile.fault_hist.count == 3


def test_unmatched_faults_are_counted_not_fatal():
    events = [
        _event("fault:exit", 5.0, pid=1, tid=1),  # exit without enter
        _event("fault:enter", 6.0, pid=1, tid=2, core=0, addr=0, write=True),
    ]
    profile = PhaseProfile.from_events(events)
    assert profile.fault_spans == []
    assert profile.unmatched_faults == 2


def test_phase_accumulation_and_flows():
    events = [
        _event("migrate:phase_lookup", 10.0, tag="nt", pid=1, vma=0, pages=8,
               dur_us=4.0),
        _event("migrate:phase_copy", 20.0, tag="nt", pid=1, vma=0, src=0, dest=1,
               pages=8, dur_us=6.0),
        # tail copy: pages=0 must not touch the flow matrix
        _event("migrate:phase_copy", 25.0, tag="nt", pid=1, vma=0, src=0, dest=1,
               pages=0, dur_us=5.0),
        _event("migrate:phase_copy", 30.0, tag="move_pages", pid=1, vma=0, src=2,
               dest=1, pages=3, dur_us=2.0),
    ]
    profile = PhaseProfile.from_events(events)
    assert profile.tags() == ["move_pages", "nt"]
    assert profile.phase_breakdown("nt") == {"copy": 11.0, "lookup": 4.0}
    assert profile.total_us("nt") == 15.0
    assert profile.phase_pages[("nt", "copy")] == 8
    assert profile.phase_events[("nt", "copy")] == 2
    assert profile.flow_pages == {(0, 1): 8, (2, 1): 3}
    assert profile.flow_matrix(3) == [[0, 8, 0], [0, 0, 0], [0, 3, 0]]


def test_publish_registers_tp_metrics():
    events = [
        _event("migrate:phase_copy", 20.0, tag="nt", pid=1, vma=0, src=0, dest=1,
               pages=8, dur_us=6.0),
        _event("fault:enter", 1.0, pid=1, tid=1, core=0, addr=0, write=True),
        _event("fault:exit", 2.5, pid=1, tid=1),
        # second span so the p50 quantile clears its sample floor
        _event("fault:enter", 3.0, pid=1, tid=1, core=0, addr=0, write=True),
        _event("fault:exit", 4.5, pid=1, tid=1),
    ]
    registry = MetricsRegistry()
    PhaseProfile.from_events(events).publish(registry)
    snap = registry.snapshot()
    assert snap["tp.phase.total_us.nt.copy"]["value"] == 6.0
    assert snap["tp.phase.pages.nt.copy"]["value"] == 8.0
    assert snap["tp.flow.pages.0->1"]["value"] == 8.0
    assert snap["tp.fault.count"]["value"] == 2.0
    assert snap["tp.phase.nt.copy.dur_us"]["type"] == "histogram"
    assert snap["tp.fault.latency_us"]["p50"] == 1.5


def test_chrome_events_are_mergeable_slices():
    events = [
        _event("migrate:phase_copy", 20.0, tag="nt", pid=1, vma=0, src=0, dest=1,
               pages=8, dur_us=6.0),
        _event("fault:enter", 1.0, pid=1, tid=1, core=0, addr=0, write=True),
        _event("fault:exit", 2.5, pid=1, tid=1),
    ]
    trace = PhaseProfile.from_events(events).chrome_events()
    slices = [e for e in trace if e["ph"] == "X"]
    metas = [e for e in trace if e["ph"] == "M"]
    assert len(slices) == 2
    copy = next(e for e in slices if e["name"] == "nt.copy")
    assert copy["ts"] == 14.0 and copy["dur"] == 6.0  # emitted at span end
    # profiler rows start above the ledger-export tid range
    assert all(e["tid"] >= 100 for e in slices)
    assert {m["args"]["name"] for m in metas} == {"tp:nt", "tp:fault"}


def test_summary_is_json_ready():
    import json

    events = [
        _event("migrate:phase_copy", 20.0, tag="nt", pid=1, vma=0, src=0, dest=1,
               pages=8, dur_us=6.0),
    ]
    summary = PhaseProfile.from_events(events).summary()
    json.dumps(summary)  # must not raise
    assert summary["phases_us"]["nt"]["copy"] == 6.0
    assert summary["flows"] == {"0->1": 8}


# ------------------------------------------- acceptance: ledger reconciliation --

def _nt_ledger_total(system):
    totals = system.kernel.ledger.totals
    return sum(totals.get(tag, 0.0) for tag in
               ("nt.control", "nt.alloc", "nt.copy", "nt.free"))


@pytest.mark.parametrize("nthreads", [1, 4])
def test_lazy_phase_sums_match_the_migration_cost_model(nthreads):
    """ISSUE acceptance: for a fig7 lazy run the per-phase span sums
    reconcile with the ledger's nt.* cost model within 1% (exactly, in
    fact: the spans wrap the charged yields and nothing else)."""
    system = fresh_system()
    with record_tracepoints() as rec:
        measure_parallel_migration(1024, nthreads, "lazy", system=system)
    profile = PhaseProfile.from_events(rec.events)
    phases = profile.total_us("nt")
    ledger = _nt_ledger_total(system)
    assert ledger > 0
    assert phases == pytest.approx(ledger, rel=0.01)
    # all 1024 pages flowed source -> destination exactly once
    assert profile.phase_pages[("nt", "copy")] == 1024
    assert profile.flow_pages == {(0, 1): 1024}


def test_sync_phases_account_pages_and_expose_lock_waits():
    system = fresh_system()
    with record_tracepoints() as rec:
        measure_parallel_migration(256, 1, "sync", system=system)
    profile = PhaseProfile.from_events(rec.events)
    breakdown = profile.phase_breakdown("move_pages")
    assert set(breakdown) == {"lookup", "alloc", "copy", "remap"}
    # every phase saw every page exactly once
    for phase in ("lookup", "alloc", "copy", "remap"):
        assert profile.phase_pages[("move_pages", phase)] == 256
    assert profile.flow_pages == {(0, 1): 256}
    # the copy spans wrap the copy events exactly
    ledger_copy = system.kernel.ledger.totals["move_pages.copy"]
    assert breakdown["copy"] == pytest.approx(ledger_copy, rel=1e-9)
    # control phases (lookup + alloc + remap) cover at least the
    # charged control time — alloc additionally includes lru_lock waits
    ledger_control = system.kernel.ledger.totals["move_pages.control"]
    control_spans = breakdown["lookup"] + breakdown["alloc"] + breakdown["remap"]
    assert control_spans >= ledger_control * 0.999
