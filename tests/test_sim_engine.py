"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt, SEC, USEC


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(5.0)
        done.append(env.now)
        yield env.timeout(2.5)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [5.0, 7.5]


def test_time_constants():
    assert SEC == 1e6 * USEC


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_process_waits_for_process():
    env = Environment()
    order = []

    def child():
        yield env.timeout(3.0)
        order.append("child")
        return "payload"

    def parent():
        value = yield env.process(child())
        order.append("parent")
        return value

    p = env.process(parent())
    assert env.run(until=p) == "payload"
    assert order == ["child", "parent"]


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(5):
        env.process(proc(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent():
        with pytest.raises(ValueError, match="boom"):
            yield env.process(child())
        return "handled"

    p = env.process(parent())
    assert env.run(until=p) == "handled"


def test_unhandled_process_exception_surfaces_at_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    p = env.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run(until=p)


def test_event_succeed_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        got.append((yield ev))

    def trigger():
        yield env.timeout(2.0)
        ev.succeed("hello")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == ["hello"]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_run_until_time():
    env = Environment()
    log = []

    def ticker():
        while True:
            yield env.timeout(10.0)
            log.append(env.now)

    env.process(ticker())
    env.run(until=35.0)
    assert log == [10.0, 20.0, 30.0]
    assert env.now == 35.0


def test_all_of_collects_values():
    env = Environment()

    def proc():
        t1 = env.timeout(5.0, value="a")
        t2 = env.timeout(3.0, value="b")
        values = yield env.all_of([t1, t2])
        return values

    p = env.process(proc())
    assert env.run(until=p) == ["a", "b"]
    assert env.now == 5.0


def test_any_of_returns_first():
    env = Environment()

    def proc():
        slow = env.timeout(50.0, value="slow")
        fast = env.timeout(1.0, value="fast")
        ev, value = yield env.any_of([slow, fast])
        assert ev is fast
        return value

    p = env.process(proc())
    assert env.run(until=p) == "fast"
    assert env.now == 1.0


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            caught.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(4.0)
        target.interrupt("wake-up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert caught == [(4.0, "wake-up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError, match="must yield Events"):
        env.run()


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_deadlock_detected_when_waiting_on_dead_event():
    env = Environment()
    ev = env.event()

    def waiter():
        yield ev

    p = env.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=p)


def test_events_processed_counter():
    env = Environment()

    def proc():
        for _ in range(10):
            yield env.timeout(1.0)

    env.process(proc())
    env.run()
    assert env.events_processed >= 10
