"""Tests for the System facade and the util helpers."""

import pytest

from repro import Placement, System
from repro.util import (
    GB,
    MB,
    MiB,
    PAGE_SIZE,
    bytes_per_us,
    bytes_to_pages,
    crossover_index,
    fmt_bytes,
    fmt_throughput,
    geomean,
    improvement_percent,
    mb_per_s,
    pages_to_bytes,
    render_series,
    render_table,
    speedup,
)


# ----------------------------------------------------------------- System ----
def test_system_defaults_to_paper_machine():
    system = System()
    assert system.machine.name == "opteron-8347he-quad"
    assert system.now == 0.0


def test_system_spawn_and_join():
    system = System()
    proc = system.create_process("p")

    def body(t):
        yield t.kernel.env.timeout(3.0)
        return t.core

    thread = system.spawn(proc, 5, body)
    assert system.run_to(thread.join()) == 5
    assert system.now == pytest.approx(3.0)


def test_system_join_all():
    system = System()
    proc = system.create_process("team")

    def body(rank, t):
        yield t.kernel.env.timeout(float(rank + 1))

    threads = system.spawn_team(proc, 3, body, Placement.COMPACT)
    system.join_all(threads)
    assert system.now == pytest.approx(3.0)


def test_independent_systems_do_not_share_state():
    a, b = System(), System()
    proc = a.create_process("only-a")

    def body(t):
        addr = yield from t.mmap(4 * PAGE_SIZE, 3)
        yield from t.touch(addr, 4 * PAGE_SIZE)

    thread = a.spawn(proc, 0, body)
    a.run_to(thread.join())
    assert a.kernel.allocators[0].used == 4
    assert b.kernel.allocators[0].used == 0


# ------------------------------------------------------------------ units ----
def test_page_conversions():
    assert pages_to_bytes(3) == 3 * PAGE_SIZE
    assert bytes_to_pages(1) == 1
    assert bytes_to_pages(PAGE_SIZE + 1) == 2


def test_throughput_math():
    # 1 MB in 1 second == 1 MB/s
    assert mb_per_s(MB, 1e6) == pytest.approx(1.0)
    assert mb_per_s(MB, 0) == float("inf")
    assert bytes_per_us(1000.0) == pytest.approx(GB / 1e6)


def test_fmt_helpers():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(MiB) == "1.0 MiB"
    assert fmt_throughput(850) == "850 MB/s"
    assert fmt_throughput(1300) == "1.30 GB/s"


# ------------------------------------------------------------------ stats ----
def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def test_speedup_and_improvement():
    assert speedup(10.0, 5.0) == pytest.approx(2.0)
    assert improvement_percent(87.5, 69.2) == pytest.approx(26.45, abs=0.1)
    assert improvement_percent(2.6, 4.92) == pytest.approx(-47.2, abs=0.1)


def test_crossover_index():
    xs = [128, 256, 512, 1024]
    static = [1.0, 2.0, 4.0, 8.0]
    nexttouch = [1.5, 2.5, 3.5, 5.0]
    assert crossover_index(xs, static, nexttouch) == 2  # wins from 512
    assert crossover_index(xs, static, [9, 9, 9, 9]) is None
    with pytest.raises(ValueError):
        crossover_index([1], [1, 2], [1])


# ----------------------------------------------------------------- tables ----
def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1.0], ["bb", 123456.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "123,456" in lines[3]


def test_render_table_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["one"], [["a", "b"]])


def test_render_series():
    text = render_series("n", [1, 2], {"s1": [10, 20], "s2": [30, 40]}, title="T")
    assert text.startswith("T")
    assert "s1" in text and "40" in text
