"""The benchmark-regression gate: comparison logic and CLI behaviour.

The real suites (fig4/fig5/fig7 hot paths) run once in
``test_run_bench_measures_real_metrics``; every gate-behaviour test
monkeypatches ``run_bench`` so the suite stays fast.
"""

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.obs import bench


def test_compare_statuses():
    baseline = {"a": 100.0, "b": 100.0, "c": 100.0, "gone": 50.0}
    metrics = {"a": 99.0, "b": 90.0, "c": 103.0, "fresh": 1.0}
    verdicts = bench.compare(metrics, baseline, tolerance=0.02)
    assert verdicts["a"]["status"] == "ok"
    assert verdicts["b"]["status"] == "regression"
    assert verdicts["b"]["delta_pct"] == pytest.approx(-10.0)
    assert verdicts["c"]["status"] == "improvement"
    assert verdicts["fresh"]["status"] == "new"
    assert verdicts["gone"]["status"] == "missing"


def test_compare_zero_baseline_is_ok():
    verdicts = bench.compare({"a": 0.0}, {"a": 0.0}, tolerance=0.02)
    assert verdicts["a"]["status"] == "ok"


def test_bench_report_without_baseline(tmp_path):
    report = bench.bench_report({"m": 1.0}, str(tmp_path / "missing.json"), 0.02)
    assert report["schema"] == bench.SCHEMA
    assert report["comparison"] is None
    assert report["baseline_path"] is None
    assert report["failures"] == []


def test_bench_report_accepts_bare_map_and_report_style(tmp_path):
    for doc in ({"m": 2.0}, {"schema": bench.SCHEMA, "metrics": {"m": 2.0}}):
        path = tmp_path / "base.json"
        path.write_text(json.dumps(doc))
        report = bench.bench_report({"m": 1.0}, str(path), 0.02)
        assert report["comparison"]["m"]["status"] == "regression"
        assert report["failures"] == ["m"]


def test_run_bench_measures_real_metrics():
    metrics = bench.run_bench()
    assert list(metrics) == sorted(metrics)
    assert all(v > 0 for v in metrics.values())
    # The headline paper shapes hold even at gate sizes.
    assert metrics["fig4.memcpy_mb_s@1024"] > metrics["fig4.move_pages_mb_s@1024"]
    assert metrics["fig5.kernel_nt_mb_s@1024"] > metrics["fig5.user_nt_mb_s@1024"]
    assert metrics["fig7.sync_4t_mb_s@1024"] > metrics["fig7.sync_1t_mb_s@1024"]
    # ...and match the committed baseline (determinism + gate honesty).
    committed = json.load(open(bench.DEFAULT_BASELINE))["metrics"]
    assert metrics == pytest.approx(committed)


@pytest.fixture
def fake_bench(monkeypatch):
    def fake_run_bench():
        return {"fig4.move_pages_mb_s@1024": 600.0, "fig5.kernel_nt_mb_s@1024": 780.0}

    monkeypatch.setattr(bench, "run_bench", fake_run_bench)
    return fake_run_bench()


def test_cli_bench_bootstrap_then_ok_then_regression(fake_bench, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    out = tmp_path / "out"
    argv = ["bench", "--baseline", str(baseline), "--out", str(out)]
    # 1. No baseline yet: writes results, exits 0.
    assert cli_main(argv) == 0
    results = json.load(open(out / bench.RESULTS_FILENAME))
    assert results["comparison"] is None and results["metrics"] == fake_bench
    # 2. Bootstrap the baseline, then the gate passes.
    assert cli_main(argv + ["--update-baseline"]) == 0
    assert json.load(open(baseline))["metrics"] == fake_bench
    assert cli_main(argv) == 0
    # 3. Doctor the baseline upward: the same run now regresses.
    doc = json.load(open(baseline))
    doc["metrics"]["fig4.move_pages_mb_s@1024"] *= 1.5
    baseline.write_text(json.dumps(doc))
    assert cli_main(argv) == 1
    results = json.load(open(out / bench.RESULTS_FILENAME))
    assert results["failures"] == ["fig4.move_pages_mb_s@1024"]
    # 4. A looser tolerance absorbs it.
    assert cli_main(argv + ["--tolerance", "0.5"]) == 0


def test_cli_bench_missing_metric_fails(fake_bench, tmp_path):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"metrics": dict(fake_bench, extinct=1.0)}))
    argv = ["bench", "--baseline", str(baseline), "--out", str(tmp_path)]
    assert cli_main(argv) == 1
    results = json.load(open(tmp_path / bench.RESULTS_FILENAME))
    assert results["failures"] == ["extinct"]
    assert results["comparison"]["extinct"]["status"] == "missing"
