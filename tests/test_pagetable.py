"""Unit tests for PTE arrays and flag semantics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernel.pagetable import (
    PTE_NEXTTOUCH,
    PTE_PRESENT,
    PTE_WRITE,
    PageTable,
)


def mapped_table(n=8, node=0, writable=True):
    pt = PageTable(n)
    frames = np.arange(100, 100 + n, dtype=np.int64)
    pt.map_pages(slice(None), frames, np.full(n, node, dtype=np.int16), writable)
    return pt


def test_fresh_table_is_empty():
    pt = PageTable(4)
    assert not pt.present().any()
    assert not pt.populated().any()
    assert pt.resident_pages() == 0


def test_map_pages_sets_bits():
    pt = mapped_table()
    assert pt.present().all()
    assert pt.writable().all()
    assert (pt.node == 0).all()
    pt.check_invariants()


def test_map_readonly():
    pt = mapped_table(writable=False)
    assert pt.present().all()
    assert not pt.writable().any()


def test_unmap_returns_frames():
    pt = mapped_table(4)
    frames, nodes = pt.unmap_pages(slice(1, 3))
    assert list(frames) == [101, 102]
    assert list(nodes) == [0, 0]
    assert pt.resident_pages() == 2
    pt.check_invariants()


def test_mark_next_touch_clears_valid_keeps_frame():
    pt = mapped_table(4)
    marked = pt.mark_next_touch(slice(None))
    assert marked == 4
    assert not pt.present().any()
    assert pt.populated().all()  # frames retained — data not lost
    assert pt.next_touch().all()
    pt.check_invariants()


def test_mark_next_touch_skips_unpopulated_and_already_marked():
    pt = PageTable(4)
    frames = np.asarray([7, 8], dtype=np.int64)
    pt.map_pages(slice(0, 2), frames, np.zeros(2, dtype=np.int16), True)
    assert pt.mark_next_touch(slice(None)) == 2
    assert pt.mark_next_touch(slice(None)) == 0  # idempotent


def test_clear_next_touch_restores_access():
    pt = mapped_table(4)
    pt.mark_next_touch(slice(None))
    pt.clear_next_touch(slice(None), writable=True)
    assert pt.present().all()
    assert pt.writable().all()
    assert not pt.next_touch().any()
    pt.check_invariants()


def test_set_protection_counts_changes():
    pt = mapped_table(8)
    changed = pt.set_protection(slice(None), readable=True, writable=False)
    assert changed == 8  # lost WRITE
    assert pt.set_protection(slice(None), readable=True, writable=False) == 0


def test_set_protection_none_keeps_frames():
    pt = mapped_table(4)
    pt.set_protection(slice(None), readable=False, writable=False)
    assert not pt.present().any()
    assert pt.populated().all()


def test_set_protection_ignores_unpopulated():
    pt = PageTable(4)
    changed = pt.set_protection(slice(None), readable=True, writable=True)
    assert changed == 0
    assert not pt.present().any()


def test_write_only_rejected():
    pt = PageTable(2)
    with pytest.raises(SimulationError):
        pt.set_protection(slice(None), readable=False, writable=True)


def test_node_histogram():
    pt = PageTable(6)
    pt.map_pages(slice(0, 3), np.asarray([1, 2, 3]), np.asarray([0, 0, 0], dtype=np.int16), True)
    pt.map_pages(slice(3, 5), np.asarray([4, 5]), np.asarray([2, 2], dtype=np.int16), True)
    hist = pt.node_histogram(4)
    assert list(hist) == [3, 0, 2, 0]


def test_split_preserves_state():
    pt = mapped_table(8)
    pt.mark_next_touch(slice(4, 6))
    left, right = pt.split(4)
    assert left.npages == 4 and right.npages == 8 - 4
    assert left.present().all()
    assert right.next_touch()[:2].all()
    assert not right.next_touch()[2:].any()
    left.check_invariants()
    right.check_invariants()


def test_split_bounds():
    pt = PageTable(4)
    with pytest.raises(SimulationError):
        pt.split(0)
    with pytest.raises(SimulationError):
        pt.split(4)


def test_invariant_present_without_frame():
    pt = PageTable(2)
    pt.flags[0] = PTE_PRESENT
    with pytest.raises(SimulationError, match="PRESENT page without a frame"):
        pt.check_invariants()


def test_invariant_nexttouch_still_present():
    pt = mapped_table(2)
    pt.flags[0] |= PTE_NEXTTOUCH
    with pytest.raises(SimulationError, match="NEXTTOUCH"):
        pt.check_invariants()
