"""Pins for Ledger.total multi-prefix semantics and Tracer drop accounting."""

import pytest

from repro.kernel.accounting import Ledger
from repro.sim.trace import Tracer


# ------------------------------------------------------------------- Ledger --

def make_ledger():
    ledger = Ledger()
    ledger.add("move_pages.control", 10.0)
    ledger.add("move_pages.copy", 30.0)
    ledger.add("nt.control", 5.0)
    ledger.add("blas.stall", 1.0)
    return ledger


def test_total_single_prefix():
    assert make_ledger().total("move_pages") == pytest.approx(40.0)


def test_total_multi_prefix_is_any_match():
    # Disjoint prefixes: a plain union.
    assert make_ledger().total("move_pages", "nt") == pytest.approx(45.0)


def test_total_overlapping_prefixes_count_each_tag_once():
    # "move_pages.copy" matches both prefixes but contributes once:
    # startswith(tuple) is one any-match test, not a per-prefix sum.
    ledger = make_ledger()
    assert ledger.total("move_pages", "move_pages.copy") == pytest.approx(40.0)
    assert ledger.total("move_pages.copy", "move_pages.copy") == pytest.approx(30.0)


def test_total_empty_string_prefix_matches_everything():
    ledger = make_ledger()
    assert ledger.total("") == pytest.approx(ledger.total())
    assert ledger.total("", "move_pages") == pytest.approx(ledger.total())


def test_total_no_prefixes_is_grand_total():
    assert make_ledger().total() == pytest.approx(46.0)


def test_total_unknown_prefix_is_zero():
    assert make_ledger().total("swap") == 0.0


# ------------------------------------------------------------------- Tracer --

def test_tracer_capacity_one_drop_counts():
    tracer = Tracer(capacity=1)
    tracer.record(0.0, 1.0, "a")
    assert tracer.dropped == 0
    tracer.record(1.0, 1.0, "b")
    tracer.record(2.0, 1.0, "c")
    assert tracer.dropped == 2
    assert [s.tag for s in tracer.samples] == ["c"]


@pytest.mark.parametrize("capacity,records", [(3, 3), (3, 4), (3, 10), (7, 20)])
def test_tracer_drop_count_is_records_minus_capacity(capacity, records):
    tracer = Tracer(capacity=capacity)
    for i in range(records):
        tracer.record(float(i), 1.0, f"t{i}")
    assert tracer.dropped == max(0, records - capacity)
    assert len(tracer.samples) == min(records, capacity)
    # The *newest* samples are the ones retained.
    assert tracer.samples[-1].tag == f"t{records - 1}"


def test_tracer_drop_count_survives_capacity_rebinding():
    # The eviction check is against the deque's maxlen, so a stale
    # `capacity` attribute cannot desynchronise the count.
    tracer = Tracer(capacity=2)
    tracer.capacity = 99
    for i in range(5):
        tracer.record(float(i), 1.0, "x")
    assert tracer.dropped == 3


def test_tracer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
