"""Every reproducer in tests/reproducers/ replays clean.

Each file was minimized from a real fuzzer-caught kernel bug; the fix
landed with the file. Replaying returns the failure it reproduces, so a
regression flips the result from None back to a Failure — these are
pinned regression tests in data form (see docs/correctness.md)."""

from pathlib import Path

import pytest

from repro.check import load_reproducer, replay_reproducer
from repro.check.fuzzer import MAX_REPRO_OPS, REPRODUCER_SCHEMA

REPRO_DIR = Path(__file__).parent / "reproducers"
REPRO_FILES = sorted(REPRO_DIR.glob("*.json"))


def test_reproducer_corpus_is_nonempty():
    assert len(REPRO_FILES) >= 3


@pytest.mark.parametrize("path", REPRO_FILES, ids=lambda p: p.stem)
def test_reproducer_is_wellformed(path):
    doc = load_reproducer(path)
    assert doc["schema"] == REPRODUCER_SCHEMA
    assert doc["inject"] is None  # corpus files caught *real* bugs
    assert 1 <= len(doc["ops"]) <= MAX_REPRO_OPS
    assert {"kind", "step", "op"} <= set(doc["failure"])


@pytest.mark.parametrize("path", REPRO_FILES, ids=lambda p: p.stem)
def test_reproducer_replays_clean(path):
    failure = replay_reproducer(path)
    assert failure is None, (
        f"{path.name} reproduces again: {failure.kind}:{failure.name} "
        f"at step {failure.step} — a fixed bug has regressed. {failure.detail}"
    )
