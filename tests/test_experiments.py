"""Smoke tests for the experiment harness (tiny parameter ranges).

The heavy shape assertions live in ``benchmarks/``; these verify the
harness mechanics: result structure, determinism, rendering, CLI.
"""

import pytest

from repro.experiments import (
    blas1_check,
    fig4_throughput,
    fig5_nexttouch,
    fig6_breakdown,
    fig7_scalability,
    fig8_matmul,
    table1_lu,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.common import ExperimentResult, default_page_counts


def test_default_page_counts():
    assert default_page_counts(1, 16) == [1, 2, 4, 8, 16]
    assert default_page_counts(4, 4) == [4]


def test_result_render_and_series():
    r = ExperimentResult("x", "Title", "n", [1, 2], {"a": [3.0, 4.0]}, notes=["hello"])
    text = r.render()
    assert "Title" in text and "hello" in text
    assert r.series_of("a") == [3.0, 4.0]
    with pytest.raises(KeyError):
        r.series_of("missing")


def test_fig4_structure():
    r = fig4_throughput.run([4, 16])
    assert r.experiment_id == "fig4"
    assert set(r.series) == set(fig4_throughput.SERIES)
    assert all(len(v) == 2 for v in r.series.values())
    assert all(v > 0 for vs in r.series.values() for v in vs)


def test_fig4_is_deterministic():
    a = fig4_throughput.run([16])
    b = fig4_throughput.run([16])
    assert a.series == b.series


def test_fig5_structure():
    r = fig5_nexttouch.run([4, 16])
    assert set(r.series) == set(fig5_nexttouch.SERIES)


def test_fig6_breakdowns_sum_to_100():
    for result in (fig6_breakdown.run_user([16]), fig6_breakdown.run_kernel([16])):
        total = sum(series[0] for series in result.series.values())
        assert total == pytest.approx(100.0, abs=0.01)


def test_fig7_structure():
    r = fig7_scalability.run([64], thread_counts=(1, 2))
    assert "Sync - 1 Thread" in r.series
    assert "Lazy - 2 Threads" in r.series


def test_fig7_rejects_bad_strategy():
    from repro.experiments.fig7_scalability import measure_parallel_migration

    with pytest.raises(ValueError):
        measure_parallel_migration(16, 1, "teleport")


def test_fig8_structure():
    r = fig8_matmul.run([128], num_threads=4)
    assert set(r.series) == set(fig8_matmul.SERIES)


def test_table1_structure():
    r = table1_lu.run(configs=((1024, 256),), num_threads=4)
    assert r.series["static (s)"][0] > 0
    assert r.series["next-touch (s)"][0] > 0
    assert len(r.series["paper %"]) == 1


def test_blas1_structure():
    r = blas1_check.run([1 << 14], num_threads=4)
    assert len(r.series["improvement %"]) == 1


def test_result_csv_round_trip():
    import csv
    import io

    r = ExperimentResult("xid", "T", "n", [1, 2, 4], {"a": [3.0, 4.5, 6.0], "b": [5, 6, 7]})
    rows = list(csv.reader(io.StringIO(r.to_csv())))
    assert rows[0] == ["n", "a", "b"]
    xs = [int(row[0]) for row in rows[1:]]
    a = [float(row[1]) for row in rows[1:]]
    b = [int(row[2]) for row in rows[1:]]
    assert (xs, a, b) == (r.xs, r.series["a"], r.series["b"])


def test_save_csv_round_trip(tmp_path):
    import csv

    r = ExperimentResult("figx", "T", "n", [1, 2], {"a": [3.25, 4.5]})
    path = r.save_csv(tmp_path)
    rows = list(csv.reader(open(path)))
    assert [float(row[1]) for row in rows[1:]] == r.series["a"]


def test_result_to_json_schema_and_ordering():
    import json

    r = ExperimentResult(
        "figx", "Title", "pages", [1, 2], {"zeta": [1.0, 2.0], "alpha": [3.0, 4.0]},
        notes=["n1"],
    )
    doc = json.loads(r.to_json())
    assert list(doc) == [
        "schema", "experiment_id", "title", "x_label", "xs", "series", "notes",
    ]
    assert doc["schema"] == "repro.experiment_result/v1"
    assert list(doc["series"]) == ["alpha", "zeta"]  # sorted => deterministic
    assert doc["xs"] == [1, 2] and doc["notes"] == ["n1"]
    # Equal results serialize byte-identically regardless of insertion order.
    swapped = ExperimentResult(
        "figx", "Title", "pages", [1, 2], {"alpha": [3.0, 4.0], "zeta": [1.0, 2.0]},
        notes=["n1"],
    )
    assert r.to_json() == swapped.to_json()


def test_result_to_json_coerces_numpy_scalars():
    import json

    import numpy as np

    r = ExperimentResult("figx", "T", "n", [np.int64(1)], {"a": [np.float64(2.5)]})
    doc = json.loads(r.to_json())
    assert doc["xs"] == [1] and doc["series"]["a"] == [2.5]


def test_ragged_series_rejected_by_exporters():
    r = ExperimentResult("figx", "T", "n", [1, 2], {"a": [3.0]})
    for method in (r.to_json, r.to_csv, r.to_dict):
        with pytest.raises(ValueError, match="series 'a' has 1 values for 2 xs"):
            method()


def test_save_json(tmp_path):
    import json

    r = ExperimentResult("fig99", "T", "n", [1], {"a": [2.5]})
    path = r.save_json(tmp_path)
    assert path.endswith("fig99.json")
    assert json.load(open(path))["series"]["a"] == [2.5]


def test_result_to_csv():
    r = ExperimentResult("xid", "T", "n", [1, 2], {"a": [3, 4], "b": [5, 6]})
    csv_text = r.to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "n,a,b"
    assert lines[1] == "1,3,5"
    assert lines[2] == "2,4,6"


def test_result_save_csv(tmp_path):
    r = ExperimentResult("fig99", "T", "n", [1], {"a": [2.5]})
    path = r.save_csv(tmp_path)
    assert path.endswith("fig99.csv")
    assert "2.5" in open(path).read()


def test_cli_csv_flag(tmp_path, capsys):
    assert cli_main(["fig5", "--csv", str(tmp_path)]) == 0
    assert (tmp_path / "fig5.csv").exists()


def test_cli_json_and_trace_flags(tmp_path):
    import json

    assert cli_main(["fig5", "--json", str(tmp_path), "--trace", str(tmp_path)]) == 0
    result = json.load(open(tmp_path / "fig5.json"))
    assert result["schema"] == "repro.experiment_result/v1"
    assert set(result["series"]) == set(fig5_nexttouch.SERIES)
    manifest = json.load(open(tmp_path / "fig5.manifest.json"))
    assert manifest["schema"] == "repro.run_manifest/v1"
    assert manifest["experiment"] == "fig5"
    assert manifest["num_systems"] > 0
    assert manifest["kernel_stats"]["pages_migrated"] > 0
    metrics = json.load(open(tmp_path / "fig5.metrics.json"))
    assert metrics["kernel.pages_migrated"]["value"] > 0
    trace = json.load(open(tmp_path / "fig5.trace.json"))
    assert isinstance(trace, list) and trace
    assert all({"name", "ph", "ts", "dur"} <= set(e) for e in trace)
    assert any(e["ph"] == "X" for e in trace)


def test_cli_without_artifact_flags_writes_nothing(tmp_path, capsys):
    assert cli_main(["fig5"]) == 0
    assert list(tmp_path.iterdir()) == []


def test_cli_check_flag(tmp_path, capsys):
    import json

    from repro.check import INVARIANTS

    assert cli_main(["fig5", "--check", "--json", str(tmp_path)]) == 0
    err = capsys.readouterr().err
    assert "invariants OK" in err
    manifest = json.load(open(tmp_path / "fig5.manifest.json"))
    assert manifest["invariants"]["checked"] == sorted(INVARIANTS)
    assert manifest["invariants"]["violations"] == []
    assert manifest["invariants"]["systems"] > 0
    metrics = json.load(open(tmp_path / "fig5.metrics.json"))
    assert metrics["check.invariant_violations"]["value"] == 0


def test_cli_check_flag_alone_runs_checkers(capsys):
    assert cli_main(["fig4", "--check"]) == 0
    assert "invariants OK" in capsys.readouterr().err


def test_cli_runs_one_experiment(capsys):
    assert cli_main(["fig5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "Kernel Next-touch" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        cli_main(["fig99"])


def test_whatif_machines_structure():
    from repro.experiments import whatif_machines as wm

    r = wm.run_machines([16])
    assert set(r.series) == set(wm.MACHINES)
    # Same per-page mechanism everywhere.
    values = [r.series[name][0] for name in r.series]
    assert max(values) - min(values) < 1.0


def test_whatif_numa_factor_payoff_monotonic():
    from repro.experiments import whatif_machines as wm

    r = wm.run_numa_factors([1.2, 2.0, 3.0])
    passes = r.series_of("passes to amortize migration")
    assert passes[0] > passes[1] > passes[2]


def test_cli_whatif_and_calibration(capsys):
    assert cli_main(["calibration"]) == 0
    out = capsys.readouterr().out
    assert "move_pages base overhead" in out


def test_cli_fig3_topology(capsys):
    assert cli_main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "opteron-8347he-quad" in out
    assert "Transport" in out


def test_whatif_eras_structure():
    from repro.experiments import whatif_machines as wm

    r = wm.run_eras(npages=256)
    assert "2009 4x Opteron (paper)" in r.series
    assert "modern 2-socket" in r.series
    old = dict(zip(r.xs, r.series["2009 4x Opteron (paper)"]))
    new = dict(zip(r.xs, r.series["modern 2-socket"]))
    # The mechanism is far faster today...
    assert new["kernel NT MB/s"] > old["kernel NT MB/s"] * 3
    assert new["move_pages base us"] < old["move_pages base us"] / 3
    # ...but the smaller NUMA factor raises the break-even.
    assert new["passes to amortize"] > old["passes to amortize"]
