"""Tests for the /proc-style introspection views (repro.obs.procfs)."""

import numpy as np

from conftest import drive
from repro import PROT_RW, System
from repro.kernel.mempolicy import MemPolicy
from repro.kernel.swap import attach_swap
from repro.obs import procfs, record_tracepoints
from repro.obs.tracepoints import TracepointEvent
from repro.util import PAGE_SIZE


def test_policy_string_spellings():
    assert procfs.policy_string(None) == "default"
    assert procfs.policy_string(MemPolicy.default()) == "default"
    assert procfs.policy_string(MemPolicy.bind(0, 2)) == "bind:0,2"
    assert procfs.policy_string(MemPolicy.preferred(3)) == "prefer:3"
    assert procfs.policy_string(MemPolicy.interleave(0, 1)) == "interleave:0,1"


def _placed_system():
    """8 pages on node 0, 4 of them then moved to node 1; 2 swapped."""
    system = System(debug_checks=True)
    attach_swap(system.kernel)
    proc = system.create_process("view")

    def body(t):
        addr = yield from t.mmap(8 * PAGE_SIZE, PROT_RW, name="buf")
        yield from t.touch(addr, 8 * PAGE_SIZE)
        yield from t.move_range(addr, 4 * PAGE_SIZE, 1)
        yield from t.swap_out(addr + 6 * PAGE_SIZE, 2 * PAGE_SIZE)
        return addr

    addr = drive(system, body, core=0, process=proc)
    return system, proc, addr


def test_numa_maps_counts_match_the_page_tables():
    system, proc, addr = _placed_system()
    num_nodes = system.machine.num_nodes
    records = procfs.numa_maps_data(proc, num_nodes)
    buf = next(r for r in records if r["name"] == "buf")
    assert buf["start"] == addr
    assert buf["policy"] == "default"
    assert buf["npages"] == 8
    assert buf["mapped"] == 6  # two pages live on swap
    assert buf["per_node"][0] == 2
    assert buf["per_node"][1] == 4
    assert buf["swapped"] == 2
    # ground truth straight from the page table
    vma = proc.addr_space.find_vma(addr)
    present = vma.pt.frame >= 0
    assert buf["mapped"] == int(np.count_nonzero(present))
    for node in range(num_nodes):
        assert buf["per_node"][node] == int(
            np.count_nonzero(vma.pt.node[present] == node)
        )
    # and the rendered line carries the same numbers
    text = procfs.numa_maps(proc, num_nodes)
    line = next(ln for ln in text.splitlines() if "name=buf" in ln)
    assert "N0=2" in line and "N1=4" in line and "swap=2" in line
    assert line.startswith(f"{addr:012x} default anon=6")


def test_numa_maps_renders_policies_and_nexttouch_marks():
    system = System(debug_checks=True)
    proc = system.create_process("pol")

    def body(t):
        addr = yield from t.mmap(
            4 * PAGE_SIZE, PROT_RW, policy=MemPolicy.interleave(0, 1), name="il"
        )
        yield from t.touch(addr, 4 * PAGE_SIZE)
        from repro.kernel.syscalls import Madvise

        yield from t.madvise(addr, 2 * PAGE_SIZE, Madvise.NEXTTOUCH)
        return addr

    drive(system, body, core=0, process=proc)
    text = procfs.numa_maps(proc, system.machine.num_nodes)
    line = next(ln for ln in text.splitlines() if "name=il" in ln)
    assert "interleave:0,1" in line
    assert "nexttouch=2" in line


def test_vmstat_is_consistent_with_numastat_and_stats():
    system, proc, _ = _placed_system()
    kernel = system.kernel
    data = procfs.vmstat_data(kernel)
    table = kernel.numastat.as_table()
    assert data["numa_hit"] == sum(table["numa_hit"])
    assert data["numa_miss"] == sum(table["numa_miss"])
    assert data["numa_foreign"] == sum(table["numa_foreign"])
    assert data["numa_interleave"] == sum(table["interleave_hit"])
    assert data["pgmigrate_success"] == kernel.stats.pages_migrated == 4
    # the per-reason split is exhaustive: the three reasons sum to the
    # total, and this run's migrations were all move_pages
    assert (
        data["pgmigrate_move_pages"]
        + data["pgmigrate_migrate_pages"]
        + data["pgmigrate_nexttouch"]
        == data["pgmigrate_success"]
    )
    assert data["pgmigrate_move_pages"] == 4
    assert data["pgfault_minor"] == kernel.stats.minor_faults == 8
    assert data["pgcow_reuse"] + data["pgcow_copy"] == kernel.stats.cow_faults
    assert data["nr_free_pages"] == sum(kernel.node_free_pages())
    assert data["pswpout"] == 2 and data["nr_swap_used"] == 2
    assert data["pswpin"] == kernel.stats.pages_swapped_in == 0
    # rendering: one "name value" pair per line, same numbers
    rendered = dict(
        line.split() for line in procfs.vmstat(kernel).splitlines()
    )
    assert int(rendered["numa_hit"]) == data["numa_hit"]
    assert int(rendered["pgmigrate_success"]) == 4


def test_vmstat_identical_fast_vs_slow():
    """Every telemetry-backed vmstat row must be bit-identical whether
    the turbo run commits or the per-page slow path did the work — the
    KernelStats contract, pinned here at the procfs surface."""

    def run(slow: bool) -> dict:
        system = System(debug_checks=True)
        system.kernel.force_slow_path = slow
        attach_swap(system.kernel)
        proc = system.create_process("view")
        npages = 512

        def body(t):
            addr = yield from t.mmap(npages * PAGE_SIZE, PROT_RW, name="buf")
            # batch=1 storms: demand-zero turbo, then swap-out and a
            # swap-in storm, then a bulk migration — every run kind
            # with a fast/slow twin shows up in the counters.
            yield from t.touch(addr, npages * PAGE_SIZE, write=True, batch=1)
            yield from t.swap_out(addr, (npages // 2) * PAGE_SIZE)
            yield from t.touch(addr, (npages // 2) * PAGE_SIZE, batch=1)
            yield from t.move_range(addr, npages * PAGE_SIZE, 1)

        drive(system, body, core=0, process=proc)
        return procfs.vmstat_data(system.kernel)

    fast, slow = run(False), run(True)
    assert fast == slow
    assert fast["pgmigrate_success"] == 512
    assert fast["pswpout"] == fast["pswpin"] == 256


def test_pagetypeinfo_matches_the_allocators():
    system, proc, _ = _placed_system()
    kernel = system.kernel
    for rec, alloc in zip(procfs.pagetypeinfo_data(kernel), kernel.allocators):
        assert rec["node"] == alloc.node_id
        assert rec["capacity"] == alloc.capacity
        assert rec["used"] == alloc.used
        assert rec["free"] == alloc.free
        assert rec["used"] + rec["free"] == rec["capacity"]
    text = procfs.pagetypeinfo(kernel)
    assert text.splitlines()[0].split() == ["node", "capacity", "used", "free"]
    assert len(text.splitlines()) == 1 + kernel.machine.num_nodes


def _event(name, t_us, **fields):
    return TracepointEvent(name, float(t_us), 0, fields)


def test_placement_heatmap_buckets_pages_by_node_and_time():
    events = [
        _event("fault:demand_zero", 0.0, pid=1, vma=100, node=0, pages=10),
        _event("fault:nt_migrate", 50.0, pid=1, vma=100, dest=1, pages=6),
        _event("migrate:phase_copy", 100.0, tag="mp", pid=1, vma=100,
               src=0, dest=2, pages=4, dur_us=1.0),
        _event("fault:exit", 60.0, pid=1, tid=1),  # not a placement event
    ]
    matrix, art = procfs.placement_heatmap(events, 3, buckets=2)
    assert matrix == [[10, 0], [0, 6], [0, 4]]
    assert art.splitlines()[1].startswith("N0 |")
    # vma filter restricts the timeline
    matrix2, _ = procfs.placement_heatmap(events, 3, buckets=2, vma=999)
    assert matrix2 == [[0, 0], [0, 0], [0, 0]]


def test_placement_heatmap_from_a_real_recorded_run():
    with record_tracepoints() as rec:
        _placed_system()
    num_nodes = 4
    matrix, art = procfs.placement_heatmap(rec.events, num_nodes, buckets=10)
    placed = sum(sum(row) for row in matrix)
    # 8 first-touch + 4 migrated + 2 swap-in? (no swap-in here) = 12
    assert placed == 12
    assert sum(matrix[1]) == 4  # the migrated pages landed on node 1
    assert "placement heatmap" in art


def test_introspect_cli_renders_every_view(capsys):
    from repro.experiments import cli

    assert cli.main(["introspect"]) == 0
    out = capsys.readouterr().out
    for section in (
        "=== tracepoints ===",
        "=== phase breakdown ===",
        "=== page flows",
        "numa_maps",
        "=== kernel stats ===",
        "=== /proc/vmstat ===",
        "=== /proc/pagetypeinfo ===",
        "placement heatmap",
    ):
        assert section in out
    # the kernel stats section and the vmstat view read the same
    # counters, so the migration totals printed by both must agree
    stats_lines = dict(
        line.split()
        for line in out.split("=== kernel stats ===")[1]
        .split("===")[0]
        .strip()
        .splitlines()
    )
    assert "run_ops.migrate" in stats_lines and "node_used.node0" in stats_lines
    # vmstat numbers printed by the CLI agree with numastat semantics:
    # the workload allocates every page as a hit
    rendered = dict(
        line.split()
        for line in out.split("=== /proc/vmstat ===")[1]
        .split("===")[0]
        .strip()
        .splitlines()
    )
    assert int(rendered["numa_hit"]) >= int(rendered["pgmigrate_success"]) > 0
    assert int(stats_lines["pages_migrated"]) == int(rendered["pgmigrate_success"])
