"""Tests for the reporting helpers and the event tracer."""

import pytest

from conftest import drive
from repro import Madvise, PROT_RW, System
from repro.report import ledger_report, lock_report, memory_report, system_report
from repro.sim.trace import TraceSample, Tracer
from repro.util import PAGE_SIZE


def _busy_system():
    system = System()

    def body(t):
        addr = yield from t.mmap(32 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 32 * PAGE_SIZE)
        yield from t.move_range(addr, 32 * PAGE_SIZE, 2)
        yield from t.madvise(addr, 32 * PAGE_SIZE, Madvise.NEXTTOUCH)
        yield from t.migrate_to(13)
        yield from t.touch(addr, 32 * PAGE_SIZE, bytes_per_page=64)

    drive(system, body, core=0)
    return system


# ---------------------------------------------------------------- reports ----
def test_memory_report_shows_usage():
    report = memory_report(_busy_system())
    assert "node" in report
    assert "32" in report  # pages used on node 3


def test_ledger_report_ranks_components():
    report = ledger_report(_busy_system())
    assert "move_pages" in report
    assert "%" in report


def test_lock_report_lists_acquisitions():
    report = lock_report(_busy_system())
    assert "acquisitions" in report


def test_system_report_contains_all_sections():
    report = system_report(_busy_system())
    for needle in ("kernel statistics", "memory nodes", "cost ledger", "pages migrated"):
        assert needle in report


def test_topology_report_square_machine():
    from repro import Machine
    from repro.report import topology_report

    art = topology_report(Machine.opteron_8347he_quad())
    assert "Transport" in art
    assert "#0" in art and "#3" in art
    assert "SLIT" in art and "22" in art


def test_topology_report_generic_machine():
    from repro import Machine
    from repro.report import topology_report

    art = topology_report(Machine.symmetric(2, 4))
    assert "0 <-> 1" in art


def test_reports_on_fresh_system_do_not_crash():
    system = System()
    assert "empty" in ledger_report(system)
    assert "no acquisitions" in lock_report(system)
    assert "idle" in system_report(system)


# ----------------------------------------------------------------- tracer ----
def test_tracer_records_and_totals():
    tr = Tracer()
    tr.record(0.0, 5.0, "a.x")
    tr.record(5.0, 5.0, "a.y")
    tr.record(10.0, 2.0, "b")
    assert tr.total() == pytest.approx(12.0)
    assert tr.total("a.") == pytest.approx(10.0)
    assert len(tr.filter("a.")) == 2
    assert tr.span() == (0.0, 12.0)


def test_tracer_capacity_evicts_oldest():
    tr = Tracer(capacity=3)
    for i in range(5):
        tr.record(float(i), 1.0, f"t{i}")
    assert len(tr.samples) == 3
    assert tr.dropped == 2
    assert tr.samples[0].tag == "t2"


def test_tracer_attach_captures_kernel_charges():
    system = System()
    tr = Tracer()
    tr.attach(system.kernel)

    def body(t):
        addr = yield from t.mmap(4 * PAGE_SIZE, PROT_RW)
        yield from t.touch(addr, 4 * PAGE_SIZE)

    drive(system, body)
    assert tr.total("fault.") > 0
    # Ledger still records through the hooked path.
    assert system.kernel.ledger.totals["fault.anon"] > 0


def test_tracer_timeline_renders():
    tr = Tracer()
    tr.record(0.0, 50.0, "copy.page")
    tr.record(50.0, 50.0, "control.pte")
    art = tr.timeline(width=20)
    assert "copy" in art and "control" in art
    assert "#" in art


def test_tracer_timeline_empty():
    assert Tracer().timeline() == "trace: empty"


def test_trace_sample_end():
    s = TraceSample(3.0, 4.0, "x")
    assert s.end_us == 7.0


def test_tracer_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
