#!/usr/bin/env python3
"""Lazy vs synchronous migration when access patterns are unknown.

Section 3.4's scenario: the scheduler moved a thread to another node,
and some 64 MiB working buffer should follow it — but the thread may
end up using only part of it. We compare:

* synchronous ``move_pages`` of the whole buffer (pays for every page
  up front);
* lazy kernel next-touch (only touched pages migrate, as they are
  touched);

across different "fractions actually used", and show the lazy scheme's
advantage growing as the access pattern gets sparser.

Run: ``python examples/lazy_migration.py``
"""

from repro import Madvise, PROT_RW, System
from repro.util import MiB, PAGE_SIZE, render_table

BUFFER = 64 * MiB


def run(strategy: str, used_fraction: float) -> tuple[float, int]:
    system = System()
    proc = system.create_process(f"lazy-{strategy}-{used_fraction}")
    shared = {}

    def owner(t):
        addr = yield from t.mmap(BUFFER, PROT_RW, name="workset")
        yield from t.touch(addr, BUFFER, batch=4096, bytes_per_page=0)
        shared["addr"] = addr

    t0 = system.spawn(proc, 0, owner)
    system.run_to(t0.join())

    def worker(t):
        addr = shared["addr"]
        used = int(BUFFER * used_fraction) & ~(PAGE_SIZE - 1)
        start = system.now
        if strategy == "sync":
            yield from t.move_range(addr, BUFFER, t.node)
        else:
            yield from t.madvise(addr, BUFFER, Madvise.NEXTTOUCH)
        if used:
            yield from t.touch(addr, used, batch=256, bytes_per_page=64)
        return system.now - start

    w = system.spawn(proc, 12, worker)  # thread now lives on node 3
    elapsed = system.run_to(w.join())
    return elapsed / 1e3, system.kernel.stats.pages_migrated


def main() -> None:
    rows = []
    for fraction in (1.0, 0.5, 0.25, 0.1):
        sync_ms, sync_pages = run("sync", fraction)
        lazy_ms, lazy_pages = run("lazy", fraction)
        rows.append(
            [
                f"{fraction:.0%}",
                round(sync_ms, 1),
                sync_pages,
                round(lazy_ms, 1),
                lazy_pages,
                f"{(sync_ms / lazy_ms - 1) * 100:+.0f}%",
            ]
        )
    print(
        render_table(
            ["buffer used", "sync (ms)", "sync pages", "lazy (ms)", "lazy pages", "lazy advantage"],
            rows,
            title=f"Migrating a {BUFFER >> 20} MiB buffer after a thread moved to node 3",
        )
    )
    print(
        "\nLazy (next-touch) migration never moves untouched pages, so its"
        "\nadvantage grows as the access pattern gets sparser — and it needs"
        "\nno up-front knowledge of what the thread will use (Section 3.4)."
    )


if __name__ == "__main__":
    main()
