#!/usr/bin/env python3
"""Adaptive-mesh-refinement-style dynamic affinity (the paper's
motivating application class).

A domain of patches is distributed over a 16-thread team. Every few
steps the "refinement" changes each patch's load, the scheduler
rebalances patches across threads — and the data is suddenly on the
wrong NUMA nodes. We compare three reactions, over several refinement
epochs:

* ``static``    — never migrate: remote accesses accumulate;
* ``sync``      — eagerly ``move_pages`` every reassigned patch to its
                  new owner (pays for patches that are barely used);
* ``next-touch``— mark reassigned patches ``MADV_NEXTTOUCH``; only the
                  pages a thread actually works on migrate.

This is exactly the scenario Section 3.4 argues next-touch is for:
"there is no useless migration ... and the thread scheduler does not
have to know which buffers are attached to which thread."

Run: ``python examples/adaptive_mesh.py``
"""

import numpy as np

from repro import Madvise, PROT_RW, System
from repro.openmp import OpenMP
from repro.sched import Placement
from repro.util import MiB, PAGE_SIZE, render_table

NUM_PATCHES = 32
PATCH_BYTES = 2 * MiB
EPOCHS = 6
#: Stencil passes per epoch. Migration only pays off when the data is
#: reused enough between rebalances — real AMR solvers run dozens to
#: hundreds of smoother/stencil sweeps per regrid.
SWEEPS = 80
THREADS = 8


def run(policy: str, seed: int = 42) -> dict:
    system = System()
    proc = system.create_process(f"amr-{policy}")
    rng = np.random.default_rng(seed)
    patches: list[int] = []
    box: dict = {}

    def master(t):
        # Allocate and first-touch every patch from the master: the
        # initial placement is wrong for almost everyone.
        for p in range(NUM_PATCHES):
            addr = yield from t.mmap(PATCH_BYTES, PROT_RW, name=f"patch{p}")
            yield from t.touch(addr, PATCH_BYTES, batch=1024, bytes_per_page=0)
            patches.append(addr)
        omp = OpenMP(system, proc, THREADS, Placement.SPREAD)
        t0 = system.now
        for _epoch in range(EPOCHS):
            # Refinement: patch loads change, scheduler reassigns.
            owners = rng.integers(0, THREADS, size=NUM_PATCHES)
            # Refined patches get more work this epoch.
            work_fraction = rng.uniform(0.1, 1.0, size=NUM_PATCHES)
            if policy == "next-touch":
                for addr in patches:
                    yield from t.madvise(addr, PATCH_BYTES, Madvise.NEXTTOUCH)

            def epoch_body(rank, wt, owners=owners, work=work_fraction):
                for p in np.nonzero(owners == rank)[0]:
                    addr = patches[p]
                    nbytes = int(PATCH_BYTES * work[p]) & ~(PAGE_SIZE - 1)
                    if nbytes == 0:
                        continue
                    if policy == "sync":
                        yield from wt.move_range(addr, PATCH_BYTES, wt.node)
                    # Work on the active part of the patch: stencil
                    # sweeps over the data (this is also what pulls
                    # next-touch pages over).
                    for _sweep in range(SWEEPS):
                        yield from wt.touch(addr, nbytes, batch=256)

            yield from omp.parallel(epoch_body)
        box["elapsed"] = system.now - t0

    thread = system.spawn(proc, 0, master)
    system.run_to(thread.join())
    stats = system.kernel.stats
    return {
        "policy": policy,
        "seconds": box["elapsed"] / 1e6,
        "pages_migrated": stats.pages_migrated,
        "nt_faults": stats.nt_faults,
    }


def main() -> None:
    rows = []
    results = [run(p) for p in ("static", "sync", "next-touch")]
    base = results[0]["seconds"]
    for r in results:
        rows.append(
            [
                r["policy"],
                round(r["seconds"], 3),
                f"{(base / r['seconds'] - 1) * 100:+.1f}%",
                r["pages_migrated"],
                r["nt_faults"],
            ]
        )
    print(
        render_table(
            ["policy", "time (s)", "vs static", "pages migrated", "nt faults"],
            rows,
            title=f"AMR-style dynamic affinity: {NUM_PATCHES} patches x {PATCH_BYTES >> 20} MiB, "
            f"{EPOCHS} refinement epochs, {THREADS} threads",
        )
    )
    print(
        "\nnext-touch migrates only the pages each epoch actually touches,"
        "\nwhile sync eagerly moves whole patches the new owner may barely use."
    )


if __name__ == "__main__":
    main()
