#!/usr/bin/env python3
"""Introspection tour: what the simulated machine can tell you.

Runs a small mixed workload (first-touch, synchronous migration,
next-touch) under an event tracer and prints every report the library
offers: the Figure-3-style topology, a numastat view, the cost ledger,
lock contention, link utilization, and an ASCII activity timeline.

Run: ``python examples/introspection.py``
"""

from repro import Madvise, MemPolicy, PROT_RW, System
from repro.report import system_report, topology_report
from repro.sim.trace import Tracer
from repro.util import MiB


def main() -> None:
    system = System()
    print(topology_report(system.machine))
    print()

    tracer = Tracer()
    tracer.attach(system.kernel)
    proc = system.create_process("tour")
    nbytes = 8 * MiB

    def workload(t):
        # Interleaved allocation, like the LU experiment's matrix.
        addr = yield from t.mmap(
            nbytes, PROT_RW, policy=MemPolicy.interleave(0, 1, 2, 3), name="workset"
        )
        yield from t.touch(addr, nbytes, batch=512)
        # Consolidate on node 1 synchronously...
        yield from t.move_range(addr, nbytes, 1)
        # ...then let next-touch drag it to node 3.
        yield from t.madvise(addr, nbytes, Madvise.NEXTTOUCH)
        yield from t.migrate_to(12)
        yield from t.touch(addr, nbytes, bytes_per_page=64, batch=64)

    thread = system.spawn(proc, 0, workload)
    system.run_to(thread.join())

    print(system_report(system))
    print()
    print(tracer.timeline(width=64, groups=["fault", "access", "move_pages", "madvise", "nt"]))


if __name__ == "__main__":
    main()
