#!/usr/bin/env python3
"""Automatic NUMA balancing: the paper's idea, without the hooks.

The paper wires next-touch marking into the OpenMP runtime. This
example runs the same "threads moved, data stranded" scenario three
ways:

* ``static``   — data stays where the master first-touched it;
* ``manual``   — the application marks its buffers MADV_NEXTTOUCH
                 after the threads move (the paper's usage);
* ``autonuma`` — nobody does anything: a kernel-daemon-style scanner
                 (``repro.ext.AutoNumaScanner``) periodically marks
                 pages, and the hinting faults pull data to its users —
                 the design mainline Linux adopted years later.

Run: ``python examples/auto_numa_balancing.py``
"""

from repro import Madvise, PROT_RW, System
from repro.ext import AutoNumaScanner
from repro.util import MiB, PAGE_SIZE, render_table

BUFFER = 8 * MiB
WORKERS = 4  # one per node
PASSES = 40


def run(mode: str) -> dict:
    system = System()
    proc = system.create_process(f"balance-{mode}")
    buffers: list[int] = []

    def master(t):
        for _ in range(WORKERS):
            addr = yield from t.mmap(BUFFER, PROT_RW)
            yield from t.touch(addr, BUFFER, batch=512, bytes_per_page=0)
            buffers.append(addr)
        if mode == "manual":
            for addr in buffers:
                yield from t.madvise(addr, BUFFER, Madvise.NEXTTOUCH)

    m = system.spawn(proc, 0, master)
    system.run_to(m.join())

    scanner = None
    if mode == "autonuma":
        scanner = AutoNumaScanner(proc, scan_period_us=2_000.0, scan_pages=2048)
        scanner.start()

    def worker(rank):
        def body(t):
            addr = buffers[rank]
            for _ in range(PASSES):
                yield from t.touch(addr, BUFFER, batch=512)

        return body

    t0 = system.now
    threads = [
        system.spawn(proc, core, worker(rank))
        for rank, core in enumerate((0, 4, 8, 12))  # one worker per node
    ]
    for t in threads:
        system.run_to(t.join())
    elapsed = (system.now - t0) / 1e6
    if scanner is not None:
        scanner.stop()
        system.run()
    hist = proc.addr_space.node_histogram()
    local = sum(hist[n] for n in range(4)) and hist  # noqa: keep array
    return {
        "mode": mode,
        "seconds": elapsed,
        "placement": hist.tolist(),
        "migrated": system.kernel.stats.pages_migrated,
    }


def main() -> None:
    results = [run(m) for m in ("static", "manual", "autonuma")]
    base = results[0]["seconds"]
    rows = [
        [
            r["mode"],
            round(r["seconds"], 3),
            f"{(base / r['seconds'] - 1) * 100:+.1f}%",
            r["migrated"],
            str(r["placement"]),
        ]
        for r in results
    ]
    print(
        render_table(
            ["mode", "time (s)", "vs static", "pages migrated", "final placement"],
            rows,
            title=f"{WORKERS} workers (one per node) x {PASSES} passes over "
            f"{BUFFER >> 20} MiB buffers first-touched on node 0",
        )
    )
    print(
        "\nThe scanner converges to the same distribution as the explicit"
        "\nmadvise hook without any application changes — the trade-off is"
        "\na few scan periods of remote access before the faults kick in."
    )


if __name__ == "__main__":
    main()
