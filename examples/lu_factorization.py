#!/usr/bin/env python3
"""The Table 1 workload at laptop scale: blocked LU, static vs
next-touch.

Runs the threaded LU factorization with 16 OpenMP-style threads over a
few (matrix, block) configurations and prints the static /
next-touch comparison, demonstrating both regimes of the paper's
Table 1:

* blocks narrower than 512 float64 elements share pages with their
  neighbours — next-touch migration thrashes and loses;
* page-independent, cache-spilling blocks (>= 512) make next-touch
  clearly win by keeping every GEMM's operands local.

Run: ``python examples/lu_factorization.py``
"""

from repro import System
from repro.apps.lu import ThreadedLU
from repro.util import improvement_percent, render_table


def main() -> None:
    configs = [(2048, 64), (2048, 512), (4096, 64), (4096, 512)]
    rows = []
    for n, b in configs:
        times = {}
        extras = {}
        for policy in ("static", "nexttouch"):
            system = System()
            result = ThreadedLU(system, n, b, policy=policy).run()
            times[policy] = result.elapsed_s
            extras[policy] = result
        rows.append(
            [
                f"{n}x{n}",
                f"{b}x{b}",
                "yes" if extras["nexttouch"].page_independent else "no",
                round(times["static"], 2),
                round(times["nexttouch"], 2),
                f"{improvement_percent(times['static'], times['nexttouch']):+.1f}%",
                extras["nexttouch"].pages_migrated,
            ]
        )
    print(
        render_table(
            ["matrix", "block", "page-indep", "static (s)", "next-touch (s)", "improvement", "pages migrated"],
            rows,
            title="Threaded LU factorization, 16 OpenMP threads (simulated seconds)",
        )
    )
    print(
        "\nBlocks below 512 float64 elements share 4-KiB pages with their"
        "\nneighbours: a single touch migrates other threads' data too, and"
        "\nthe per-iteration madvise storm costs more than locality returns."
    )


if __name__ == "__main__":
    main()
