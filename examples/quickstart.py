#!/usr/bin/env python3
"""Quickstart: allocate, place, migrate and next-touch a buffer.

Walks through the library's core vocabulary on the paper's machine
(4 sockets x 4 cores, one NUMA node each, Linux-2.6.27-like kernel):

1. first-touch allocation (pages land on the faulting thread's node);
2. synchronous migration with ``move_pages``;
3. the paper's kernel next-touch: ``madvise(MADV_NEXTTOUCH)`` + touch;
4. a ``numa_maps``-style report of where everything ended up.

Run: ``python examples/quickstart.py``
"""

from repro import Madvise, PROT_RW, System
from repro.numa import numa_maps
from repro.util import MiB, PAGE_SIZE, fmt_throughput, mb_per_s


def main() -> None:
    system = System()
    process = system.create_process("quickstart")
    nbytes = 4 * MiB

    def program(t):
        # -- 1. first touch -------------------------------------------------
        addr = yield from t.mmap(nbytes, PROT_RW, name="buffer")
        yield from t.touch(addr, nbytes)
        print(f"thread on core {t.core} (node {t.node}) first-touched {nbytes >> 20} MiB")
        print("  placement:", process.addr_space.node_histogram().tolist())

        # -- 2. synchronous move_pages --------------------------------------
        t0 = system.now
        status = yield from t.move_range(addr, nbytes, 2)
        elapsed = system.now - t0
        print(
            f"move_pages -> node 2: {len(status)} pages in {elapsed:.0f} us "
            f"({fmt_throughput(mb_per_s(nbytes, elapsed))})"
        )
        print("  placement:", process.addr_space.node_histogram().tolist())

        # -- 3. kernel next-touch ------------------------------------------
        marked = yield from t.madvise(addr, nbytes, Madvise.NEXTTOUCH)
        print(f"madvise(NEXTTOUCH) marked {marked} pages")
        yield from t.migrate_to(12)  # scheduler moves us to node 3
        t0 = system.now
        yield from t.touch(addr, nbytes, bytes_per_page=64)
        elapsed = system.now - t0
        print(
            f"touched from node {t.node}: lazy migration took {elapsed:.0f} us "
            f"({fmt_throughput(mb_per_s(nbytes, elapsed))})"
        )
        print("  placement:", process.addr_space.node_histogram().tolist())

    thread = system.spawn(process, core=0, body=program)
    system.run_to(thread.join())

    print("\nnuma_maps:")
    print(numa_maps(process))
    stats = system.kernel.stats
    print(
        f"\nkernel stats: {stats.pages_first_touched} first-touched, "
        f"{stats.pages_migrated} migrated, {stats.nt_faults} next-touch faults, "
        f"{stats.tlb_shootdowns} TLB shootdowns"
    )


if __name__ == "__main__":
    main()
